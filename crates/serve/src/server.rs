//! The `cati serve` daemon: a long-lived inference service over a
//! blocking accept loop.
//!
//! Request lifecycle (DESIGN.md §13):
//!
//! 1. A connection thread parses the HTTP request and, for `/infer`,
//!    tries to **admit** it into the bounded work queue. A full queue
//!    is an immediate deterministic 503 (`serve.rejected`) — load is
//!    shed at the door, never by stalling the socket.
//! 2. Inference worker threads drain the queue in **micro-batches**:
//!    everything waiting (up to `max_batch`) is taken at once, each
//!    request's extraction is embedded (through the shared
//!    [`ArtifactCache`] when mounted), the rows are concatenated, and
//!    one [`cati::MultiStage::leaf_distributions_batch`] pass
//!    classifies the whole batch. Per-row classification is
//!    row-independent, so every response is bit-identical to one-shot
//!    `cati infer` on the same binary.
//! 3. The connection thread waits on a response slot under the
//!    request's hang limit (the fuzz machinery, [`HangLimit`]). A
//!    deadline miss answers 504 immediately and **abandons** the
//!    slot; the worker's late result is dropped and counted
//!    (`serve.deadline_dropped`) instead of tearing down the batch.
//! 4. The model is an atomically hot-swappable [`Arc`]: `POST
//!    /admin/reload` builds a new [`ModelSlot`] and swaps it in; each
//!    batch snapshots one slot, and every response carries the
//!    version of the model that actually served it
//!    (`x-cati-model-version`).

use crate::http::{Request, RequestError, Response};
use crate::timeout::HangLimit;
use cati::{encode_cati1, ArtifactCache, Cati, Coverage, Diagnostics, InferReport, Tensor};
use cati_analysis::{
    digest_bytes, extract_lenient_mode_observed, extract_mode_observed, Extraction, FeatureView,
};
use cati_asm::binary::Binary;
use cati_obs::metrics::{MetricsSnapshot, DEFAULT_BUCKETS};
use cati_obs::{Event, Observer, Recorder, RecorderConfig, SpanGuard};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Histogram bounds for `serve.batch_size` (requests coalesced per
/// worker drain).
pub const BATCH_BUCKETS: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0];

/// The per-request phase histograms (`serve.phase.*`): where a
/// request's wall time goes between admission and response.
///
/// - `queue_wait_ms` — admission → worker drain;
/// - `embed_ms` — extraction + embedding of one request (cache hits
///   land here too, near zero);
/// - `batch_wait_ms` — prepared → shared classification pass start
///   (waiting for batchmates to embed);
/// - `leaf_ms` — the shared `leaf_distributions_batch` pass, observed
///   once per batched request;
/// - `vote_ms` — per-request voting + response serialization.
pub const PHASE_HISTOGRAMS: [&str; 5] = [
    "serve.phase.queue_wait_ms",
    "serve.phase.embed_ms",
    "serve.phase.batch_wait_ms",
    "serve.phase.leaf_ms",
    "serve.phase.vote_ms",
];

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` = ephemeral port, for tests).
    pub addr: String,
    /// Bounded work-queue capacity; request N+1 gets a 503.
    pub queue_capacity: usize,
    /// Most requests coalesced into one classification batch.
    pub max_batch: usize,
    /// Inference worker threads draining the queue.
    pub workers: usize,
    /// Default per-request deadline (requests may override with the
    /// `x-cati-hang-limit-ms` header).
    pub hang_limit: HangLimit,
    /// Server-side [`ArtifactCache`] tier, keyed by binary digest —
    /// repeat submissions of the same binary skip extraction and
    /// embedding.
    pub cache_dir: Option<PathBuf>,
    /// Worker-thread override for the model's inference config
    /// (0 = keep the trained config).
    pub threads: usize,
    /// Telemetry configuration of the internal [`Recorder`].
    pub recorder: RecorderConfig,
    /// Honor the `x-cati-test-sleep-ms` header, which makes the
    /// worker sleep before computing a request — the deterministic
    /// "slow work" knob the concurrency/deadline tests are built on.
    /// Never enabled by the CLI.
    pub allow_test_delay: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            max_batch: 8,
            workers: 1,
            hang_limit: HangLimit::unlimited(),
            cache_dir: None,
            threads: 0,
            recorder: RecorderConfig::default(),
            allow_test_delay: false,
        }
    }
}

/// The version string of a trained system: the digest of its
/// deterministic CATI1 encoding, so retrained or converted models get
/// distinct versions and re-saves of the same model agree.
pub fn model_version(cati: &Cati) -> String {
    digest_bytes(&encode_cati1(cati)).to_string()
}

/// One immutable model snapshot: the system plus its version. Swapped
/// atomically as a whole so a batch never mixes weights and version.
#[derive(Debug)]
pub struct ModelSlot {
    /// The trained system.
    pub cati: Arc<Cati>,
    /// [`model_version`] of `cati`.
    pub version: String,
}

impl ModelSlot {
    fn new(mut cati: Cati, threads: usize) -> ModelSlot {
        if threads > 0 {
            cati.config.threads = threads;
        }
        let version = model_version(&cati);
        ModelSlot {
            cati: Arc::new(cati),
            version,
        }
    }
}

/// Where a response ends up: filled by the worker, or abandoned by a
/// connection thread whose deadline expired first.
enum SlotState {
    Pending,
    Done(Response),
    Abandoned,
}

/// The rendezvous between a connection thread and the worker that
/// computes its response.
struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        })
    }

    /// Delivers the worker's response. Returns false when the waiter
    /// already gave up (deadline expired) — the result is dropped.
    fn fulfill(&self, response: Response) -> bool {
        let mut state = self.state.lock().expect("slot lock");
        match *state {
            SlotState::Abandoned => false,
            _ => {
                *state = SlotState::Done(response);
                self.ready.notify_all();
                true
            }
        }
    }

    /// Whether the waiter already abandoned this slot (lets the
    /// worker skip computing a response nobody will read).
    fn is_abandoned(&self) -> bool {
        matches!(*self.state.lock().expect("slot lock"), SlotState::Abandoned)
    }

    /// Blocks until the response arrives or `limit` expires; `None`
    /// marks the slot abandoned (the fuzz hang-limit contract: the
    /// computation is never interrupted, only its result discarded).
    fn wait(&self, limit: HangLimit) -> Option<Response> {
        let mut state = self.state.lock().expect("slot lock");
        match limit.duration() {
            None => loop {
                if let SlotState::Done(_) = *state {
                    let done = std::mem::replace(&mut *state, SlotState::Abandoned);
                    let SlotState::Done(response) = done else {
                        unreachable!()
                    };
                    return Some(response);
                }
                state = self.ready.wait(state).expect("slot lock");
            },
            Some(limit) => {
                let deadline = Instant::now() + limit;
                loop {
                    if let SlotState::Done(_) = *state {
                        let done = std::mem::replace(&mut *state, SlotState::Abandoned);
                        let SlotState::Done(response) = done else {
                            unreachable!()
                        };
                        return Some(response);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        *state = SlotState::Abandoned;
                        return None;
                    }
                    let (s, _) = self
                        .ready
                        .wait_timeout(state, deadline - now)
                        .expect("slot lock");
                    state = s;
                }
            }
        }
    }
}

/// One admitted inference request.
struct Job {
    binary: Binary,
    lenient: bool,
    test_delay: Option<Duration>,
    slot: Arc<ResponseSlot>,
    admitted: Instant,
}

/// Shared state of a running daemon.
struct ServeState {
    cfg: ServeConfig,
    addr: SocketAddr,
    /// The hot-swappable model: readers clone the [`Arc`], reload
    /// replaces it under the write lock.
    model: RwLock<Arc<ModelSlot>>,
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    recorder: Recorder,
    cache: Option<ArtifactCache>,
    shutdown: AtomicBool,
    /// Monotonic sequence for generated trace ids.
    trace_seq: AtomicU64,
    /// Unix-ms at daemon start; makes generated trace ids distinct
    /// across daemon restarts, not just within one.
    trace_epoch_ms: u64,
}

impl ServeState {
    fn current_model(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.model.read().expect("model lock"))
    }

    /// The trace id of one exchange: the caller's `x-cati-trace-id`
    /// if it is printable and short enough, else a generated
    /// `<epoch_ms>-<seq>` id unique for this daemon's lifetime.
    fn trace_id(&self, request: &Request) -> String {
        if let Some(id) = request.header("x-cati-trace-id") {
            let id = id.trim();
            if !id.is_empty() && id.len() <= 128 && id.chars().all(|c| c.is_ascii_graphic()) {
                return id.to_string();
            }
        }
        let n = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        format!("{:x}-{n:06x}", self.trace_epoch_ms)
    }

    /// Flags shutdown and wakes everything that blocks: workers on
    /// the queue condvar, the accept loop via a self-connection.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_ready.notify_all();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon; dropping it shuts the server down and joins its
/// threads.
pub struct ServerHandle {
    state: Arc<ServeState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when `addr` asked for
    /// an ephemeral one).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Version of the currently served model.
    pub fn model_version(&self) -> String {
        self.state.current_model().version.clone()
    }

    /// The daemon's telemetry recorder (metrics registry + request
    /// timeline), e.g. for writing a run manifest after shutdown.
    pub fn recorder(&self) -> &Recorder {
        &self.state.recorder
    }

    /// Asks the server to stop accepting and drain its queue.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Blocks until the accept loop and all workers exit (i.e. until
    /// [`ServerHandle::shutdown`] or `POST /admin/shutdown`).
    pub fn wait(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.wait();
    }
}

/// The daemon entry points.
pub struct Server;

impl Server {
    /// Starts a daemon serving `cati` under `cfg`; returns once the
    /// socket is bound and the workers are running.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-directory failures.
    pub fn start(cati: Cati, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(ArtifactCache::open(dir)?),
            None => None,
        };
        let recorder = Recorder::new(cfg.recorder);
        recorder
            .metrics()
            .register_histogram("serve.batch_size", &BATCH_BUCKETS);
        for name in PHASE_HISTOGRAMS {
            recorder
                .metrics()
                .register_histogram(name, &DEFAULT_BUCKETS);
        }
        let threads = cfg.threads;
        let state = Arc::new(ServeState {
            cfg,
            addr,
            model: RwLock::new(Arc::new(ModelSlot::new(cati, threads))),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            recorder,
            cache,
            shutdown: AtomicBool::new(false),
            trace_seq: AtomicU64::new(0),
            trace_epoch_ms: cati_obs::manifest::unix_ms(),
        });
        let workers = (0..state.cfg.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&state, &listener))
        };
        cati_obs::info!(
            &state.recorder,
            "serving on {addr} (model {})",
            state.current_model().version
        );
        Ok(ServerHandle {
            state,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// [`Server::start`] from a model file (CATI1 or legacy JSON).
    ///
    /// # Errors
    ///
    /// Propagates model-load, bind, and cache-directory failures.
    pub fn start_from_path(
        model: impl AsRef<Path>,
        cfg: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        Server::start(Cati::load(model)?, cfg)
    }
}

fn accept_loop(state: &Arc<ServeState>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        std::thread::spawn(move || handle_connection(&state, &stream));
    }
}

/// Reads one request, routes it, writes one response, appends the
/// exchange to the run manifest. One connection = one exchange.
fn handle_connection(state: &Arc<ServeState>, stream: &TcpStream) {
    let mut reader = BufReader::new(stream);
    let request = match Request::read_from(&mut reader) {
        Ok(request) => request,
        Err(RequestError::Io(_)) => return,
        Err(e @ RequestError::Malformed(_)) | Err(e @ RequestError::TooLarge(_)) => {
            let status = match e {
                RequestError::TooLarge(_) => 413,
                _ => 400,
            };
            state.recorder.metrics().inc("serve.errors", 1);
            let body = serde_json::to_vec(&json!({ "error": e.to_string() })).unwrap_or_default();
            let _ = Response::json(status, body).write_to(&mut { stream });
            return;
        }
    };
    let t0 = Instant::now();
    let (path, _) = request.route();
    let path = path.to_string();
    let trace_id = state.trace_id(&request);
    let response = route(state, &request, t0).with_header("x-cati-trace-id", &trace_id);
    let status = response.status;
    let _ = response.write_to(&mut { stream });
    cati_obs::info!(
        &state.recorder,
        "serve {} {path} -> {status} ({:.1}ms) trace={trace_id}",
        request.method,
        t0.elapsed().as_secs_f64() * 1e3
    );
}

/// Dispatches one parsed request.
fn route(state: &Arc<ServeState>, request: &Request, t0: Instant) -> Response {
    let (path, query) = request.route();
    match (request.method.as_str(), path) {
        ("POST", "/infer") => infer_route(state, request, query, t0),
        ("GET", "/health") => with_version(
            state,
            Response::json(
                200,
                serde_json::to_vec(&json!({
                    "status": "ok",
                    "model_version": state.current_model().version,
                }))
                .unwrap_or_default(),
            ),
        ),
        ("GET", "/metrics") => {
            let snapshot = state.recorder.snapshot();
            let wants_prometheus = query
                .split('&')
                .any(|kv| kv == "format=prometheus" || kv == "format=prom");
            let response = if wants_prometheus {
                Response::text(
                    200,
                    cati_obs::prometheus::CONTENT_TYPE,
                    cati_obs::prometheus::render(&snapshot),
                )
            } else {
                Response::json(200, metrics_json_body(&snapshot))
            };
            with_version(state, response)
        }
        ("GET", "/debug/profile") => {
            let tree = state.recorder.span_tree();
            let body = serde_json::to_string_pretty(&json!({
                "span_tree": tree.to_json(),
                "total_ns": tree.total_ns(),
            }))
            .unwrap_or_default()
            .into_bytes();
            with_version(state, Response::json(200, body))
        }
        ("POST", "/admin/reload") => reload_route(state, request),
        ("POST", "/admin/shutdown") => {
            cati_obs::info!(&state.recorder, "shutdown requested");
            state.request_shutdown();
            with_version(
                state,
                Response::json(200, &br#"{"status":"shutting-down"}"#[..]),
            )
        }
        (
            _,
            "/infer" | "/admin/reload" | "/admin/shutdown" | "/health" | "/metrics"
            | "/debug/profile",
        ) => {
            state.recorder.metrics().inc("serve.errors", 1);
            with_version(
                state,
                Response::json(405, &br#"{"error":"method not allowed"}"#[..]),
            )
        }
        _ => {
            state.recorder.metrics().inc("serve.errors", 1);
            with_version(state, Response::json(404, &br#"{"error":"not found"}"#[..]))
        }
    }
}

/// The `/metrics` JSON body: the serialized [`MetricsSnapshot`] with
/// `p50`/`p95`/`p99` estimates added to every non-empty histogram.
fn metrics_json_body(snapshot: &MetricsSnapshot) -> Vec<u8> {
    let histograms: Vec<Value> = snapshot
        .histograms
        .iter()
        .map(|h| {
            let mut m = match serde_json::to_value(h) {
                Ok(Value::Object(m)) => m,
                _ => serde_json::Map::new(),
            };
            if let Some((p50, p95, p99)) = h.percentiles() {
                m.insert("p50".to_string(), Value::from(p50));
                m.insert("p95".to_string(), Value::from(p95));
                m.insert("p99".to_string(), Value::from(p99));
            }
            Value::Object(m)
        })
        .collect();
    let mut root = match serde_json::to_value(snapshot) {
        Ok(Value::Object(m)) => m,
        _ => serde_json::Map::new(),
    };
    root.insert("histograms".to_string(), Value::Array(histograms));
    serde_json::to_string_pretty(&Value::Object(root))
        .unwrap_or_default()
        .into_bytes()
}

/// Stamps the *current* model version onto a server-generated
/// response (health, errors, 503/504). Worker-produced inference
/// responses instead carry the version of the batch that computed
/// them.
fn with_version(state: &ServeState, response: Response) -> Response {
    let version = state.current_model().version.clone();
    response.with_header("x-cati-model-version", version)
}

/// Admission + wait: parses the binary, enqueues under backpressure,
/// blocks on the response slot under the request's hang limit.
fn infer_route(state: &Arc<ServeState>, request: &Request, query: &str, t0: Instant) -> Response {
    let metrics = state.recorder.metrics();
    metrics.inc("serve.requests", 1);
    let binary: Binary = match serde_json::from_slice(&request.body) {
        Ok(binary) => binary,
        Err(e) => {
            metrics.inc("serve.errors", 1);
            return with_version(
                state,
                Response::json(
                    400,
                    serde_json::to_vec(&json!({ "error": format!("parse binary: {e}") }))
                        .unwrap_or_default(),
                ),
            );
        }
    };
    let lenient = query.split('&').any(|kv| kv == "mode=lenient")
        || request.header("x-cati-mode") == Some("lenient");
    let limit = match request.header("x-cati-hang-limit-ms") {
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) => HangLimit::from_ms(ms),
            Err(_) => {
                metrics.inc("serve.errors", 1);
                return with_version(
                    state,
                    Response::json(400, &br#"{"error":"bad x-cati-hang-limit-ms"}"#[..]),
                );
            }
        },
        None => state.cfg.hang_limit,
    };
    let test_delay = if state.cfg.allow_test_delay {
        request
            .header("x-cati-test-sleep-ms")
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(Duration::from_millis)
    } else {
        None
    };
    let slot = ResponseSlot::new();
    {
        let mut queue = state.queue.lock().expect("queue lock");
        if state.shutdown.load(Ordering::SeqCst) || queue.len() >= state.cfg.queue_capacity {
            drop(queue);
            metrics.inc("serve.rejected", 1);
            return with_version(
                state,
                Response::json(
                    503,
                    serde_json::to_vec(&json!({
                        "error": "queue full",
                        "capacity": state.cfg.queue_capacity,
                    }))
                    .unwrap_or_default(),
                ),
            );
        }
        queue.push_back(Job {
            binary,
            lenient,
            test_delay,
            slot: Arc::clone(&slot),
            admitted: Instant::now(),
        });
        metrics.set_gauge("serve.queue_depth", queue.len() as f64);
        state.queue_ready.notify_one();
    }
    let response = match slot.wait(limit) {
        Some(response) => response,
        None => {
            metrics.inc("serve.deadline_expired", 1);
            with_version(
                state,
                Response::json(
                    504,
                    serde_json::to_vec(&json!({
                        "error": "deadline exceeded",
                        "hang_limit_ms": limit.as_ms(),
                    }))
                    .unwrap_or_default(),
                ),
            )
        }
    };
    metrics.observe("serve.latency_ms", t0.elapsed().as_secs_f64() * 1e3);
    response
}

/// `POST /admin/reload {"model": PATH}`: load, version, atomic swap.
fn reload_route(state: &Arc<ServeState>, request: &Request) -> Response {
    let metrics = state.recorder.metrics();
    let path = serde_json::from_slice::<serde_json::Value>(&request.body)
        .ok()
        .and_then(|v| v["model"].as_str().map(str::to_string));
    let Some(path) = path else {
        metrics.inc("serve.errors", 1);
        return with_version(
            state,
            Response::json(400, &br#"{"error":"body must be {\"model\": PATH}"}"#[..]),
        );
    };
    let cati = match Cati::load(&path) {
        Ok(cati) => cati,
        Err(e) => {
            metrics.inc("serve.errors", 1);
            return with_version(
                state,
                Response::json(
                    422,
                    serde_json::to_vec(&json!({ "error": format!("load {path}: {e}") }))
                        .unwrap_or_default(),
                ),
            );
        }
    };
    let slot = Arc::new(ModelSlot::new(cati, state.cfg.threads));
    let version = slot.version.clone();
    *state.model.write().expect("model lock") = slot;
    metrics.inc("serve.reloads", 1);
    cati_obs::info!(
        &state.recorder,
        "model reloaded: {path} (version {version})"
    );
    Response::json(
        200,
        serde_json::to_vec(&json!({ "status": "reloaded", "model_version": version }))
            .unwrap_or_default(),
    )
    .with_header("x-cati-model-version", version)
}

/// One request's extraction + embedded rows, ready for the shared
/// classification pass.
struct Prepared {
    job: Job,
    ex: Extraction,
    /// Lenient-mode coverage report (`None` = strict request).
    report: Option<(Coverage, Diagnostics)>,
    xs: Tensor,
    /// When this request finished embedding (start of its batch-wait
    /// phase).
    prepared_at: Instant,
}

/// Worker: drain → snapshot model → batch-classify → respond.
fn worker_loop(state: &Arc<ServeState>) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = state.queue_ready.wait(queue).expect("queue lock");
            }
            let n = queue.len().min(state.cfg.max_batch.max(1));
            let batch = queue.drain(..n).collect();
            state
                .recorder
                .metrics()
                .set_gauge("serve.queue_depth", queue.len() as f64);
            batch
        };
        let model = state.current_model();
        state
            .recorder
            .metrics()
            .observe("serve.batch_size", batch.len() as f64);
        process_batch(state, &model, batch);
    }
}

/// Runs one micro-batch through extract → embed → one shared
/// classification pass → per-request voting and response delivery.
fn process_batch(state: &Arc<ServeState>, model: &ModelSlot, jobs: Vec<Job>) {
    let obs: &dyn Observer = &state.recorder;
    let _span = SpanGuard::enter(obs, "serve.batch");
    let cati = &model.cati;
    let metrics = state.recorder.metrics();
    let drained = Instant::now();
    for job in &jobs {
        metrics.observe(
            "serve.phase.queue_wait_ms",
            drained.duration_since(job.admitted).as_secs_f64() * 1e3,
        );
    }
    let mut prepared: Vec<Prepared> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let Some(delay) = job.test_delay {
            std::thread::sleep(delay);
        }
        if job.slot.is_abandoned() {
            state.recorder.metrics().inc("serve.deadline_dropped", 1);
            continue;
        }
        let embed_t0 = Instant::now();
        let mode = cati.config.context_mode;
        let (ex, report) = if job.lenient {
            let lenient =
                extract_lenient_mode_observed(&job.binary, FeatureView::Stripped, mode, obs);
            (
                lenient.extraction,
                Some((lenient.coverage, lenient.diagnostics)),
            )
        } else {
            let extracted = match &state.cache {
                Some(cache) => cache.extraction_mode(&job.binary, FeatureView::Stripped, mode, obs),
                None => extract_mode_observed(&job.binary, FeatureView::Stripped, mode, obs),
            };
            match extracted {
                Ok(ex) => (ex, None),
                Err(e) => {
                    state.recorder.metrics().inc("serve.errors", 1);
                    let body =
                        serde_json::to_vec(&json!({ "error": e.to_string() })).unwrap_or_default();
                    finish(state, &job, Response::json(422, body), &model.version);
                    continue;
                }
            }
        };
        let xs = match (&state.cache, job.lenient) {
            (Some(cache), false) => cache.embeddings_mode(
                &job.binary,
                FeatureView::Stripped,
                mode,
                &cati.embedder,
                &ex,
                obs,
            ),
            _ => {
                let xs = cati::dataset::embed_extraction(&ex, &cati.embedder);
                obs.event(&Event::Counter {
                    name: "embed.windows",
                    delta: ex.vucs.len() as u64,
                });
                xs
            }
        };
        metrics.observe(
            "serve.phase.embed_ms",
            embed_t0.elapsed().as_secs_f64() * 1e3,
        );
        prepared.push(Prepared {
            job,
            ex,
            report,
            xs,
            prepared_at: Instant::now(),
        });
    }
    if prepared.is_empty() {
        return;
    }

    // One classification pass over every VUC of every request in the
    // batch. Rows are concatenated in admission order; per-row
    // independence of the CNN forward pass makes each request's slice
    // bit-identical to a dedicated `cati infer` run.
    let total_rows: usize = prepared.iter().map(|p| p.xs.rows()).sum();
    let cols = prepared
        .iter()
        .find(|p| p.xs.rows() > 0)
        .map_or(0, |p| p.xs.cols());
    let mut data = Vec::with_capacity(total_rows * cols);
    for p in &prepared {
        data.extend_from_slice(p.xs.as_slice());
    }
    let batch_xs = Tensor::from_flat(total_rows, cols, data);
    let classify_t0 = Instant::now();
    for p in &prepared {
        metrics.observe(
            "serve.phase.batch_wait_ms",
            classify_t0.duration_since(p.prepared_at).as_secs_f64() * 1e3,
        );
    }
    let dists = cati
        .config
        .with_threads(|| cati.stages.leaf_distributions_batch(&batch_xs));
    let num_classes = dists.cols();
    let leaf_ms = classify_t0.elapsed().as_secs_f64() * 1e3;
    for _ in &prepared {
        metrics.observe("serve.phase.leaf_ms", leaf_ms);
    }

    let mut offset = 0usize;
    for p in prepared {
        let vote_t0 = Instant::now();
        let n = p.ex.vucs.len();
        let rows = dists.as_slice()[offset * num_classes..(offset + n) * num_classes].to_vec();
        offset += n;
        let sub = Tensor::from_flat(n, num_classes, rows);
        let mut vars = cati.infer_prepared(&p.ex, sub, obs);
        vars.sort_by_key(|v| (v.key.func, v.key.offset));
        // The bodies mirror `cati infer --json` byte for byte: a
        // sorted pretty-printed Vec<InferredVar> (strict) or a full
        // InferReport (lenient).
        let body = match p.report {
            Some((coverage, diagnostics)) => serde_json::to_string_pretty(&InferReport {
                vars,
                coverage,
                diagnostics,
            }),
            None => serde_json::to_string_pretty(&vars),
        };
        let response = match body {
            Ok(body) => Response::json(200, body.into_bytes())
                .with_header("x-cati-model-version", &model.version),
            Err(e) => Response::json(
                500,
                serde_json::to_vec(&json!({ "error": format!("serialize: {e}") }))
                    .unwrap_or_default(),
            )
            .with_header("x-cati-model-version", &model.version),
        };
        metrics.observe("serve.phase.vote_ms", vote_t0.elapsed().as_secs_f64() * 1e3);
        finish(state, &p.job, response, &model.version);
    }
}

/// Delivers a worker-computed response, counting results whose waiter
/// already timed out.
fn finish(state: &ServeState, job: &Job, response: Response, version: &str) {
    let served = job.slot.fulfill(response);
    if served {
        state.recorder.metrics().inc("serve.served", 1);
        state.recorder.metrics().observe(
            "serve.queue_to_response_ms",
            job.admitted.elapsed().as_secs_f64() * 1e3,
        );
    } else {
        state.recorder.metrics().inc("serve.deadline_dropped", 1);
        cati_obs::warn!(
            &state.recorder,
            "dropped late result for an expired request (model {version})"
        );
    }
}
