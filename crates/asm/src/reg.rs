//! x86-64 register model.
//!
//! General-purpose registers are identified by their hardware number
//! (0–15) plus an access width, so `%rax`, `%eax`, `%ax` and `%al` are
//! four views of GPR 0. SSE registers `%xmm0`–`%xmm15` are separate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Access width of a general-purpose register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Width {
    /// 8-bit (`%al`, `%r9b`, ...).
    B1,
    /// 16-bit (`%ax`, `%r9w`, ...).
    B2,
    /// 32-bit (`%eax`, `%r9d`, ...).
    B4,
    /// 64-bit (`%rax`, `%r9`, ...).
    B8,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }

    /// The width matching a byte size.
    pub fn from_bytes(bytes: u32) -> Option<Width> {
        match bytes {
            1 => Some(Width::B1),
            2 => Some(Width::B2),
            4 => Some(Width::B4),
            8 => Some(Width::B8),
            _ => None,
        }
    }

    /// AT&T mnemonic suffix letter for this width (`b`, `w`, `l`, `q`).
    pub fn att_suffix(self) -> char {
        match self {
            Width::B1 => 'b',
            Width::B2 => 'w',
            Width::B4 => 'l',
            Width::B8 => 'q',
        }
    }
}

/// A general-purpose register: hardware number 0–15 viewed at a width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gpr {
    num: u8,
    width: Width,
}

/// Hardware numbers of the 16 GPRs, named for their 64-bit forms.
pub mod gprnum {
    /// `%rax`.
    pub const RAX: u8 = 0;
    /// `%rcx`.
    pub const RCX: u8 = 1;
    /// `%rdx`.
    pub const RDX: u8 = 2;
    /// `%rbx`.
    pub const RBX: u8 = 3;
    /// `%rsp`.
    pub const RSP: u8 = 4;
    /// `%rbp`.
    pub const RBP: u8 = 5;
    /// `%rsi`.
    pub const RSI: u8 = 6;
    /// `%rdi`.
    pub const RDI: u8 = 7;
    /// `%r8`.
    pub const R8: u8 = 8;
    /// `%r9`.
    pub const R9: u8 = 9;
    /// `%r10`.
    pub const R10: u8 = 10;
    /// `%r11`.
    pub const R11: u8 = 11;
    /// `%r12`.
    pub const R12: u8 = 12;
    /// `%r13`.
    pub const R13: u8 = 13;
    /// `%r14`.
    pub const R14: u8 = 14;
    /// `%r15`.
    pub const R15: u8 = 15;
}

const NAMES_64: [&str; 16] = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13",
    "r14", "r15",
];
const NAMES_32: [&str; 16] = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d", "r12d",
    "r13d", "r14d", "r15d",
];
const NAMES_16: [&str; 16] = [
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w", "r12w", "r13w",
    "r14w", "r15w",
];
const NAMES_8: [&str; 16] = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b", "r12b",
    "r13b", "r14b", "r15b",
];

impl Gpr {
    /// A register by hardware number and width.
    ///
    /// # Panics
    ///
    /// Panics if `num > 15`.
    pub fn new(num: u8, width: Width) -> Gpr {
        assert!(num < 16, "GPR number {num} out of range");
        Gpr { num, width }
    }

    /// Hardware number 0–15.
    pub fn num(self) -> u8 {
        self.num
    }

    /// Access width.
    pub fn width(self) -> Width {
        self.width
    }

    /// The same register viewed at a different width.
    pub fn with_width(self, width: Width) -> Gpr {
        Gpr { width, ..self }
    }

    /// AT&T name without the `%` sigil.
    pub fn name(self) -> &'static str {
        match self.width {
            Width::B8 => NAMES_64[self.num as usize],
            Width::B4 => NAMES_32[self.num as usize],
            Width::B2 => NAMES_16[self.num as usize],
            Width::B1 => NAMES_8[self.num as usize],
        }
    }

    /// Parses an AT&T register name (no `%`), e.g. `"eax"` or `"r13b"`.
    pub fn parse_name(name: &str) -> Option<Gpr> {
        for (width, table) in [
            (Width::B8, &NAMES_64),
            (Width::B4, &NAMES_32),
            (Width::B2, &NAMES_16),
            (Width::B1, &NAMES_8),
        ] {
            if let Some(num) = table.iter().position(|n| *n == name) {
                return Some(Gpr {
                    num: num as u8,
                    width,
                });
            }
        }
        None
    }

    /// Whether this is the stack pointer (`%rsp` family).
    pub fn is_sp(self) -> bool {
        self.num == gprnum::RSP
    }

    /// Whether this is the frame pointer (`%rbp` family).
    pub fn is_bp(self) -> bool {
        self.num == gprnum::RBP
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name())
    }
}

impl FromStr for Gpr {
    type Err = ();

    fn from_str(s: &str) -> Result<Gpr, ()> {
        let s = s.strip_prefix('%').unwrap_or(s);
        Gpr::parse_name(s).ok_or(())
    }
}

/// An SSE register `%xmm0`–`%xmm15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Xmm(u8);

impl Xmm {
    /// Register by number.
    ///
    /// # Panics
    ///
    /// Panics if `num > 15`.
    pub fn new(num: u8) -> Xmm {
        assert!(num < 16, "XMM number {num} out of range");
        Xmm(num)
    }

    /// Hardware number 0–15.
    pub fn num(self) -> u8 {
        self.0
    }

    /// Parses `"xmm7"` (no `%`).
    pub fn parse_name(name: &str) -> Option<Xmm> {
        let n: u8 = name.strip_prefix("xmm")?.parse().ok()?;
        (n < 16).then_some(Xmm(n))
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%xmm{}", self.0)
    }
}

/// Convenience constructors for the common 64-bit registers.
pub mod regs {
    use super::{gprnum, Gpr, Width};

    macro_rules! named {
        ($($fn_name:ident => $num:expr),* $(,)?) => {
            $(
                #[doc = concat!("The 64-bit register `%", stringify!($fn_name), "`.")]
                pub fn $fn_name() -> Gpr {
                    Gpr::new($num, Width::B8)
                }
            )*
        };
    }

    named! {
        rax => gprnum::RAX, rcx => gprnum::RCX, rdx => gprnum::RDX, rbx => gprnum::RBX,
        rsp => gprnum::RSP, rbp => gprnum::RBP, rsi => gprnum::RSI, rdi => gprnum::RDI,
        r8 => gprnum::R8, r9 => gprnum::R9, r10 => gprnum::R10, r11 => gprnum::R11,
        r12 => gprnum::R12, r13 => gprnum::R13, r14 => gprnum::R14, r15 => gprnum::R15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_at_every_width() {
        for num in 0..16u8 {
            for width in [Width::B1, Width::B2, Width::B4, Width::B8] {
                let r = Gpr::new(num, width);
                assert_eq!(Gpr::parse_name(r.name()), Some(r));
            }
        }
    }

    #[test]
    fn display_has_sigil() {
        assert_eq!(regs::rax().to_string(), "%rax");
        assert_eq!(Gpr::new(9, Width::B1).to_string(), "%r9b");
        assert_eq!(Gpr::new(5, Width::B4).to_string(), "%ebp");
    }

    #[test]
    fn from_str_accepts_optional_sigil() {
        assert_eq!("%rdi".parse::<Gpr>().unwrap(), regs::rdi());
        assert_eq!(
            "esi".parse::<Gpr>().unwrap(),
            regs::rsi().with_width(Width::B4)
        );
        assert!("rq9".parse::<Gpr>().is_err());
    }

    #[test]
    fn width_conversions() {
        assert_eq!(Width::from_bytes(4), Some(Width::B4));
        assert_eq!(Width::from_bytes(3), None);
        assert_eq!(Width::B8.att_suffix(), 'q');
        assert_eq!(regs::rax().with_width(Width::B1).name(), "al");
    }

    #[test]
    fn xmm_parse_and_display() {
        assert_eq!(Xmm::parse_name("xmm12"), Some(Xmm::new(12)));
        assert_eq!(Xmm::new(3).to_string(), "%xmm3");
        assert_eq!(Xmm::parse_name("xmm16"), None);
        assert_eq!(Xmm::parse_name("mm1"), None);
    }

    #[test]
    fn sp_bp_predicates() {
        assert!(regs::rsp().is_sp());
        assert!(regs::rbp().is_bp());
        assert!(!regs::rax().is_sp());
    }
}
