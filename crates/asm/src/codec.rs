//! Byte encoding of instructions — the "machine code" of the
//! synthetic substrate.
//!
//! Real CATI consumes objdump/IDA disassembly of x86-64 machine code;
//! the classifier never sees raw bytes, only the instruction stream.
//! We therefore keep full *instruction-level* fidelity but replace the
//! Intel opcode maps with a compact reversible encoding (opcode byte =
//! mnemonic index, ModRM-inspired operand encoding, variable length).
//! Linear-sweep disassembly, section layout, stripping and symbol
//! resolution all behave exactly as they would over real machine code.

use crate::insn::{Insn, MemRef, Operand};
use crate::mnemonic::Mnemonic;
use crate::reg::{Gpr, Width, Xmm};
use std::error::Error;
use std::fmt;

/// Error decoding an instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended mid-instruction.
    Truncated {
        /// Offset of the instruction being decoded.
        at: usize,
    },
    /// Unknown opcode byte.
    BadOpcode {
        /// Offset of the opcode byte.
        at: usize,
        /// The offending byte.
        byte: u8,
    },
    /// Malformed operand payload.
    BadOperand {
        /// Offset of the instruction being decoded.
        at: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "instruction truncated at offset {at}"),
            DecodeError::BadOpcode { at, byte } => {
                write!(f, "unknown opcode 0x{byte:02x} at offset {at}")
            }
            DecodeError::BadOperand { at } => write!(f, "malformed operand at offset {at}"),
        }
    }
}

impl Error for DecodeError {}

const TAG_REG: u8 = 0;
const TAG_XMM: u8 = 1;
const TAG_IMM8: u8 = 2;
const TAG_IMM32: u8 = 3;
const TAG_IMM64: u8 = 4;
const TAG_MEM: u8 = 5;
const TAG_ABS: u8 = 6;
const TAG_ADDR: u8 = 7;

fn width_code(w: Width) -> u8 {
    match w {
        Width::B1 => 0,
        Width::B2 => 1,
        Width::B4 => 2,
        Width::B8 => 3,
    }
}

fn width_from_code(c: u8) -> Option<Width> {
    match c {
        0 => Some(Width::B1),
        1 => Some(Width::B2),
        2 => Some(Width::B4),
        3 => Some(Width::B8),
        _ => None,
    }
}

fn encode_operand(out: &mut Vec<u8>, op: &Operand) {
    match op {
        Operand::Reg(r) => {
            out.push(TAG_REG);
            out.push((width_code(r.width()) << 4) | r.num());
        }
        Operand::Xmm(x) => {
            out.push(TAG_XMM);
            out.push(x.num());
        }
        Operand::Imm(v) => {
            if let Ok(b) = i8::try_from(*v) {
                out.push(TAG_IMM8);
                out.push(b as u8);
            } else if let Ok(d) = i32::try_from(*v) {
                out.push(TAG_IMM32);
                out.extend_from_slice(&d.to_le_bytes());
            } else {
                out.push(TAG_IMM64);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Operand::Mem(m) => {
            out.push(TAG_MEM);
            // flags: bit0 = has base, bit1 = has index.
            let flags = u8::from(m.base.is_some()) | (u8::from(m.index.is_some()) << 1);
            out.push(flags);
            if let Some(b) = m.base {
                out.push(b.num());
            }
            if let Some((i, s)) = m.index {
                out.push(i.num());
                out.push(s);
            }
            out.extend_from_slice(&m.disp.to_le_bytes());
        }
        Operand::Abs(a) => {
            out.push(TAG_ABS);
            out.extend_from_slice(&a.to_le_bytes());
        }
        Operand::Addr(a) => {
            out.push(TAG_ADDR);
            out.extend_from_slice(&a.to_le_bytes());
        }
    }
}

/// Appends the encoding of `insn` to `out`, returning the number of
/// bytes written.
pub fn encode_insn(out: &mut Vec<u8>, insn: &Insn) -> usize {
    let start = out.len();
    out.push(insn.mnemonic.opcode());
    out.push(insn.operands.len() as u8);
    for op in &insn.operands {
        encode_operand(out, op);
    }
    out.len() - start
}

/// Encodes a sequence of instructions into a fresh byte vector.
pub fn encode_all(insns: &[Insn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insns.len() * 8);
    for insn in insns {
        encode_insn(&mut out, insn);
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    start: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(DecodeError::Truncated { at: self.start })?;
        self.pos += 1;
        Ok(b)
    }
    fn bytes<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        if self.pos + N > self.buf.len() {
            return Err(DecodeError::Truncated { at: self.start });
        }
        let arr = self.buf[self.pos..self.pos + N]
            .try_into()
            .map_err(|_| DecodeError::Truncated { at: self.start })?;
        self.pos += N;
        Ok(arr)
    }
}

fn decode_operand(c: &mut Cursor<'_>) -> Result<Operand, DecodeError> {
    let at = c.start;
    Ok(match c.u8()? {
        TAG_REG => {
            let b = c.u8()?;
            let width = width_from_code(b >> 4).ok_or(DecodeError::BadOperand { at })?;
            let num = b & 0x0f;
            Operand::Reg(Gpr::new(num, width))
        }
        TAG_XMM => {
            let n = c.u8()?;
            if n >= 16 {
                return Err(DecodeError::BadOperand { at });
            }
            Operand::Xmm(Xmm::new(n))
        }
        TAG_IMM8 => Operand::Imm(c.u8()? as i8 as i64),
        TAG_IMM32 => Operand::Imm(i32::from_le_bytes(c.bytes()?) as i64),
        TAG_IMM64 => Operand::Imm(i64::from_le_bytes(c.bytes()?)),
        TAG_MEM => {
            let flags = c.u8()?;
            if flags > 3 {
                return Err(DecodeError::BadOperand { at });
            }
            let base = if flags & 1 != 0 {
                let n = c.u8()?;
                if n >= 16 {
                    return Err(DecodeError::BadOperand { at });
                }
                Some(Gpr::new(n, Width::B8))
            } else {
                None
            };
            let index = if flags & 2 != 0 {
                let n = c.u8()?;
                let s = c.u8()?;
                if n >= 16 || !matches!(s, 1 | 2 | 4 | 8) {
                    return Err(DecodeError::BadOperand { at });
                }
                Some((Gpr::new(n, Width::B8), s))
            } else {
                None
            };
            let disp = i32::from_le_bytes(c.bytes()?);
            Operand::Mem(MemRef { base, index, disp })
        }
        TAG_ABS => Operand::Abs(u64::from_le_bytes(c.bytes()?)),
        TAG_ADDR => Operand::Addr(u64::from_le_bytes(c.bytes()?)),
        _ => return Err(DecodeError::BadOperand { at }),
    })
}

/// Decodes a single instruction starting at `buf[offset..]`, returning
/// the instruction and its encoded length.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, an unknown opcode, or a
/// malformed operand payload.
pub fn decode_insn(buf: &[u8], offset: usize) -> Result<(Insn, usize), DecodeError> {
    let mut c = Cursor {
        buf,
        pos: offset,
        start: offset,
    };
    let opcode = c.u8()?;
    let mnemonic = Mnemonic::from_opcode(opcode).ok_or(DecodeError::BadOpcode {
        at: offset,
        byte: opcode,
    })?;
    let count = c.u8()?;
    if count > 2 {
        return Err(DecodeError::BadOperand { at: offset });
    }
    let mut operands = Vec::with_capacity(count as usize);
    for _ in 0..count {
        operands.push(decode_operand(&mut c)?);
    }
    Ok((Insn { mnemonic, operands }, c.pos - offset))
}

/// An instruction paired with its address and encoded length, as
/// produced by linear sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Located {
    /// Virtual address of the first byte.
    pub addr: u64,
    /// Encoded length in bytes.
    pub len: u32,
    /// The instruction.
    pub insn: Insn,
}

/// Linear-sweep disassembly of a text section mapped at `base`.
///
/// # Errors
///
/// Fails on the first undecodable byte — our sections contain pure
/// code, so any error indicates corruption.
pub fn linear_sweep(text: &[u8], base: u64) -> Result<Vec<Located>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < text.len() {
        let (insn, len) = decode_insn(text, pos)?;
        out.push(Located {
            addr: base + pos as u64,
            len: len as u32,
            insn,
        });
        pos += len;
    }
    Ok(out)
}

/// A run of bytes [`linear_sweep_lenient`] could not decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeGap {
    /// Byte offset of the first skipped byte.
    pub offset: usize,
    /// Number of consecutive skipped bytes.
    pub len: usize,
    /// The error that started the gap.
    pub error: DecodeError,
}

/// The result of a fault-tolerant sweep: whatever decoded, plus a
/// report of every byte run that did not.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LenientSweep {
    /// Instructions recovered, in address order.
    pub insns: Vec<Located>,
    /// Undecodable runs, in offset order (never adjacent — adjacent
    /// bad bytes coalesce into one gap).
    pub gaps: Vec<DecodeGap>,
}

impl LenientSweep {
    /// Total number of bytes that did not decode.
    pub fn skipped_bytes(&self) -> usize {
        self.gaps.iter().map(|g| g.len).sum()
    }
}

/// Fault-tolerant linear sweep: on an undecodable byte, records a gap,
/// advances one byte and resynchronizes, so hostile sections yield a
/// partial listing instead of an error. Every input byte lands in
/// exactly one instruction or one gap; the sweep always terminates
/// (each step consumes at least one byte).
pub fn linear_sweep_lenient(text: &[u8], base: u64) -> LenientSweep {
    let mut out = LenientSweep::default();
    let mut pos = 0usize;
    while pos < text.len() {
        match decode_insn(text, pos) {
            Ok((insn, len)) => {
                out.insns.push(Located {
                    addr: base + pos as u64,
                    len: len as u32,
                    insn,
                });
                pos += len.max(1);
            }
            Err(error) => {
                match out.gaps.last_mut() {
                    Some(g) if g.offset + g.len == pos => g.len += 1,
                    _ => out.gaps.push(DecodeGap {
                        offset: pos,
                        len: 1,
                        error,
                    }),
                }
                pos += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::regs;

    fn samples() -> Vec<Insn> {
        vec![
            Insn::op1(Mnemonic::PushQ, regs::rbp()),
            Insn::op2(Mnemonic::MovQ, regs::rsp(), regs::rbp()),
            Insn::op2(
                Mnemonic::MovL,
                Operand::Imm(0x100),
                MemRef::base_disp(regs::rsp(), 0xb8),
            ),
            Insn::op2(
                Mnemonic::LeaQ,
                MemRef::base_index(regs::rbp(), regs::r9(), 4, -0x300),
                regs::rax(),
            ),
            Insn::op1(Mnemonic::CallQ, Operand::Addr(0x4044d0)),
            Insn::op2(
                Mnemonic::MovabsQ,
                Operand::Imm(0x1234_5678_9abc),
                regs::rdi(),
            ),
            Insn::op2(
                Mnemonic::Movsd,
                MemRef::base_disp(regs::rbp(), -0x10),
                Operand::Xmm(Xmm::new(0)),
            ),
            Insn::op2(Mnemonic::MovQ, Operand::Abs(0x601040), regs::rax()),
            Insn::op0(Mnemonic::Ret),
        ]
    }

    #[test]
    fn roundtrip_each() {
        for insn in samples() {
            let mut buf = Vec::new();
            let len = encode_insn(&mut buf, &insn);
            assert_eq!(len, buf.len());
            let (decoded, dlen) = decode_insn(&buf, 0).unwrap();
            assert_eq!(decoded, insn);
            assert_eq!(dlen, len);
        }
    }

    #[test]
    fn linear_sweep_recovers_stream() {
        let insns = samples();
        let bytes = encode_all(&insns);
        let decoded = linear_sweep(&bytes, 0x401000).unwrap();
        assert_eq!(decoded.len(), insns.len());
        assert_eq!(decoded[0].addr, 0x401000);
        for (d, orig) in decoded.iter().zip(&insns) {
            assert_eq!(&d.insn, orig);
        }
        // Addresses are contiguous.
        for w in decoded.windows(2) {
            assert_eq!(w[0].addr + w[0].len as u64, w[1].addr);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_all(&samples());
        assert!(matches!(
            decode_insn(&bytes[..1], 0),
            Err(DecodeError::Truncated { .. })
        ));
        // Chopping the stream anywhere strictly inside an instruction fails.
        let (_, first_len) = decode_insn(&bytes, 0).unwrap();
        for cut in 1..first_len {
            assert!(decode_insn(&bytes[..cut], 0).is_err());
        }
    }

    #[test]
    fn bad_opcode_is_detected() {
        let bytes = vec![0xff, 0x00];
        assert!(matches!(
            decode_insn(&bytes, 0),
            Err(DecodeError::BadOpcode { byte: 0xff, .. })
        ));
    }

    #[test]
    fn lenient_sweep_recovers_around_junk() {
        let insns = samples();
        let mut bytes = encode_all(&insns);
        // Splice three invalid opcode bytes into the middle of the
        // stream, on an instruction boundary.
        let (_, first_len) = decode_insn(&bytes, 0).unwrap();
        for _ in 0..3 {
            bytes.insert(first_len, 0xff);
        }
        let sweep = linear_sweep_lenient(&bytes, 0x401000);
        // Everything decodes except the junk run, reported as one gap.
        assert_eq!(sweep.insns.len(), insns.len());
        assert_eq!(sweep.gaps.len(), 1);
        assert_eq!(sweep.gaps[0].offset, first_len);
        assert_eq!(sweep.gaps[0].len, 3);
        assert_eq!(sweep.skipped_bytes(), 3);
        // Every byte is accounted for: instruction lengths + gaps.
        let covered: usize =
            sweep.insns.iter().map(|l| l.len as usize).sum::<usize>() + sweep.skipped_bytes();
        assert_eq!(covered, bytes.len());
    }

    #[test]
    fn lenient_sweep_on_clean_stream_matches_strict() {
        let bytes = encode_all(&samples());
        let strict = linear_sweep(&bytes, 0x401000).unwrap();
        let lenient = linear_sweep_lenient(&bytes, 0x401000);
        assert_eq!(lenient.insns, strict);
        assert!(lenient.gaps.is_empty());
    }

    #[test]
    fn small_immediates_use_short_form() {
        let mut short = Vec::new();
        encode_insn(
            &mut short,
            &Insn::op2(Mnemonic::AddQ, Operand::Imm(8), regs::rsp()),
        );
        let mut long = Vec::new();
        encode_insn(
            &mut long,
            &Insn::op2(Mnemonic::AddQ, Operand::Imm(0x1000), regs::rsp()),
        );
        assert!(short.len() < long.len());
    }
}
