//! Operand generalization and tokenization (paper §IV-B, Table II).
//!
//! Binary-specific values are rewritten to unified placeholder tokens
//! before embedding:
//!
//! - immediate values and displacements → `IMM` (sign preserved,
//!   scale factors in effective addresses kept — they correlate with
//!   variable length);
//! - jump/call target addresses → `ADDR`;
//! - known call-target symbols → `FUNC`;
//! - instructions with fewer than two operands are padded with
//!   `BLANK`, so every instruction tokenizes to exactly
//!   `[mnemonic, operand, operand]`.

use crate::fmt::SymbolResolver;
use crate::insn::{Insn, MemRef, Operand};
use crate::mnemonic::Kind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Padding token for missing operands.
pub const BLANK: &str = "BLANK";
/// Placeholder token for branch/call targets.
pub const ADDR: &str = "ADDR";
/// Placeholder token for resolved call-target names.
pub const FUNC: &str = "FUNC";

/// Number of tokens every generalized instruction occupies.
pub const TOKENS_PER_INSN: usize = 3;

/// A generalized instruction: exactly three tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GenInsn {
    /// `[mnemonic, operand1, operand2]`, padded with [`BLANK`].
    pub tokens: [String; TOKENS_PER_INSN],
}

impl GenInsn {
    /// The mnemonic token.
    pub fn mnemonic(&self) -> &str {
        &self.tokens[0]
    }

    /// Iterates over all three tokens.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.tokens.iter().map(String::as_str)
    }

    /// A synthetic all-BLANK instruction, used by the occlusion study
    /// (paper Eq. 5) to erase one context position.
    pub fn blank() -> GenInsn {
        GenInsn {
            tokens: [BLANK.to_string(), BLANK.to_string(), BLANK.to_string()],
        }
    }
}

impl fmt::Display for GenInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.tokens[0], self.tokens[1], self.tokens[2]
        )
    }
}

fn generalize_mem(m: &MemRef) -> String {
    let mut s = String::new();
    if m.disp != 0 {
        if m.disp < 0 {
            s.push_str("-0xIMM");
        } else {
            s.push_str("0xIMM");
        }
    }
    match (m.base, m.index) {
        (None, None) => {
            // Displacement-only reference; ensure the token is non-empty.
            if s.is_empty() {
                s.push_str("0xIMM");
            }
        }
        (Some(b), None) => s.push_str(&format!("({b})")),
        (Some(b), Some((i, sc))) => s.push_str(&format!("({b},{i},{sc})")),
        (None, Some((i, sc))) => s.push_str(&format!("(,{i},{sc})")),
    }
    s
}

/// Generalizes one instruction into its three-token form.
///
/// `symbols` determines whether call targets carry a [`FUNC`] token:
/// in a stripped binary `objdump` cannot name the target, and "if
/// objdump cannot find function name, its position is filled with a
/// BLANK" (paper §IV-B).
pub fn generalize<R: SymbolResolver>(insn: &Insn, symbols: &R) -> GenInsn {
    // The mnemonic token uses the printed (suffix-elided) spelling so
    // the token distribution matches the objdump listings CATI learns
    // from.
    let name = if insn.has_reg_operand() {
        insn.mnemonic.base_name()
    } else {
        insn.mnemonic.full_name()
    };
    let mut tokens = vec![name.to_string()];

    let is_call = matches!(insn.mnemonic.kind(), Kind::Call);
    for op in &insn.operands {
        match op {
            Operand::Reg(r) => tokens.push(r.to_string()),
            Operand::Xmm(x) => tokens.push(x.to_string()),
            Operand::Imm(v) => tokens.push(if *v < 0 {
                "$-0xIMM".into()
            } else {
                "$0xIMM".into()
            }),
            Operand::Mem(m) => tokens.push(generalize_mem(m)),
            Operand::Abs(_) => tokens.push("0xIMM".into()),
            Operand::Addr(a) => {
                tokens.push(ADDR.to_string());
                if is_call {
                    tokens.push(if symbols.symbol_at(*a).is_some() {
                        FUNC.to_string()
                    } else {
                        BLANK.to_string()
                    });
                }
            }
        }
    }
    while tokens.len() < TOKENS_PER_INSN {
        tokens.push(BLANK.to_string());
    }
    tokens.truncate(TOKENS_PER_INSN);
    // The pad/truncate above pins the length to TOKENS_PER_INSN, so
    // this conversion cannot fail; the fallback keeps the function
    // total without a panic path.
    let arr: [String; TOKENS_PER_INSN] = tokens
        .try_into()
        .unwrap_or_else(|_| std::array::from_fn(|_| BLANK.to_string()));
    GenInsn { tokens: arr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmt::NoSymbols;
    use crate::mnemonic::Mnemonic;
    use crate::parse::parse_insn;
    use crate::reg::regs;

    struct AllSyms;
    impl SymbolResolver for AllSyms {
        fn symbol_at(&self, _addr: u64) -> Option<&str> {
            Some("bfd_zalloc")
        }
    }

    fn gen(line: &str) -> GenInsn {
        generalize(&parse_insn(line).unwrap().insn, &NoSymbols)
    }

    #[test]
    fn table2_row1_immediate() {
        // add $-0xd0,%rax => add $-0xIMM,%rax
        assert_eq!(gen("add $-0xd0,%rax").to_string(), "add $-0xIMM %rax");
    }

    #[test]
    fn table2_row2_effective_address_keeps_scale() {
        assert_eq!(
            gen("lea -0x300(%rbp,%r9,4),%rax").to_string(),
            "lea -0xIMM(%rbp,%r9,4) %rax"
        );
    }

    #[test]
    fn table2_row3_jump() {
        assert_eq!(gen("jmp 0x3bc59").to_string(), "jmp ADDR BLANK");
    }

    #[test]
    fn table2_row4_call_with_symbol() {
        let insn = parse_insn("callq 0x3bc59").unwrap().insn;
        assert_eq!(generalize(&insn, &AllSyms).to_string(), "callq ADDR FUNC");
        assert_eq!(
            generalize(&insn, &NoSymbols).to_string(),
            "callq ADDR BLANK"
        );
    }

    #[test]
    fn frame_slot_displacements_collapse() {
        // Two different offsets on the same base produce the same tokens
        // — the "uncertain sample" confounder of paper Fig. 1.
        assert_eq!(
            gen("movl $0x100,0xb8(%rsp)").tokens,
            gen("movl $0x100,0xd0(%rsp)").tokens
        );
        assert_ne!(
            gen("movl $0x100,0xb8(%rsp)").tokens,
            gen("movl $0x100,0xb8(%rbp)").tokens
        );
    }

    #[test]
    fn zero_disp_mem_keeps_paren_form() {
        assert_eq!(gen("mov (%rdi),%rax").to_string(), "mov (%rdi) %rax");
    }

    #[test]
    fn absolute_memory_generalizes_to_imm() {
        let insn = Insn::op2(Mnemonic::MovQ, Operand::Abs(0x601040), regs::rax());
        assert_eq!(generalize(&insn, &NoSymbols).to_string(), "mov 0xIMM %rax");
    }

    #[test]
    fn zero_operand_pads_to_three() {
        assert_eq!(gen("ret").to_string(), "ret BLANK BLANK");
        assert_eq!(gen("cltq").to_string(), "cltq BLANK BLANK");
    }

    #[test]
    fn blank_insn_is_all_blank() {
        assert_eq!(GenInsn::blank().to_string(), "BLANK BLANK BLANK");
    }

    #[test]
    fn registers_survive_generalization() {
        assert_eq!(gen("movslq %esi,%rsi").to_string(), "movslq %esi %rsi");
    }
}
