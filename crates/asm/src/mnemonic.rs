//! The instruction mnemonic set.
//!
//! The subset of x86-64 covered here is what GCC/Clang emit for
//! integer, pointer, SSE floating-point and x87 `long double` code at
//! `-O0`..`-O3` — the instruction vocabulary CATI's classifier sees.
//!
//! Mnemonics carry their AT&T spelling twice: the *full* (suffixed)
//! name, e.g. `movl`, and the *base* name, e.g. `mov`. Like objdump,
//! the formatter elides the width suffix whenever a register operand
//! already pins the width, so `movl $0x100,0xb8(%rsp)` keeps its
//! suffix while `mov %rax,0xb0(%rsp)` drops it — exactly the token
//! distribution visible in the paper's figures.

use crate::reg::Width;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Behavioural class of a mnemonic, used by codegen and by the
/// variable-analysis pass to decide how operands touch memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kind {
    /// `mov` family: operand 0 → operand 1.
    Move,
    /// `movabs`: 64-bit immediate load.
    Movabs,
    /// Sign/zero extension; source and destination widths differ.
    Ext {
        /// Source operand width.
        src: Width,
        /// Destination operand width.
        dst: Width,
    },
    /// `lea`: address computation, no memory access.
    Lea,
    /// Two-operand ALU op that reads and writes the destination.
    Arith,
    /// `cmp`/`test`: reads both operands, writes flags only.
    Compare,
    /// One-operand read-modify-write (`neg`, `not`, `inc`, `dec`).
    Unary,
    /// Shift by immediate or `%cl`.
    Shift,
    /// `imul` two-operand form.
    Mul,
    /// One-operand divide family (`idiv`, `div`, `mul`).
    Div,
    /// Width conversions `cltq`/`cltd`/`cqto` (implicit operands).
    SignCvt,
    /// `push` (reads operand, writes stack).
    Push,
    /// `pop` (writes operand, reads stack).
    Pop,
    /// `call`.
    Call,
    /// `ret`.
    Ret,
    /// `leave`.
    Leave,
    /// Unconditional `jmp`.
    Jmp,
    /// Conditional jump.
    Jcc,
    /// `setCC %r8`.
    SetCc,
    /// SSE scalar move (`movss`/`movsd`) or packed move.
    SseMove,
    /// SSE scalar arithmetic (`addsd`, `mulss`, ...).
    SseArith,
    /// SSE compare (`ucomiss`/`ucomisd`).
    SseCmp,
    /// SSE ↔ GPR conversions (`cvtsi2sd`, `cvttsd2si`, ...).
    SseCvt,
    /// SSE register zeroing (`pxor`, `xorps`, `xorpd`).
    SseZero,
    /// x87 load (`flds`/`fldl`/`fldt`) — reads memory.
    X87Load,
    /// x87 store-and-pop (`fstps`/`fstpl`/`fstpt`) — writes memory.
    X87Store,
    /// x87 stack arithmetic (`faddp`, `fmulp`, ...).
    X87Arith,
    /// `nop`.
    Nop,
}

macro_rules! mnemonics {
    ($(($variant:ident, $full:literal, $base:literal, $kind:expr, $width:expr)),* $(,)?) => {
        /// An instruction mnemonic (AT&T spelling).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum Mnemonic {
            $($variant,)*
        }

        impl Mnemonic {
            /// Every mnemonic, in declaration order. The position of a
            /// mnemonic here is its stable opcode in the byte encoding.
            pub const ALL: &'static [Mnemonic] = &[$(Mnemonic::$variant,)*];

            /// Full AT&T name including any width suffix.
            pub fn full_name(self) -> &'static str {
                match self { $(Mnemonic::$variant => $full,)* }
            }

            /// Suffix-elided name, printed when a register operand
            /// already determines the width (objdump's behaviour).
            pub fn base_name(self) -> &'static str {
                match self { $(Mnemonic::$variant => $base,)* }
            }

            /// Behavioural class.
            pub fn kind(self) -> Kind {
                match self { $(Mnemonic::$variant => $kind,)* }
            }

            /// Data width of the integer operation, if the mnemonic
            /// is width-suffixed.
            pub fn width(self) -> Option<Width> {
                match self { $(Mnemonic::$variant => $width,)* }
            }

            /// Looks up a mnemonic by its full name.
            pub fn from_full_name(name: &str) -> Option<Mnemonic> {
                match name {
                    $($full => Some(Mnemonic::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

use Width::{B1, B2, B4, B8};

mnemonics! {
    // Integer moves.
    (MovB, "movb", "mov", Kind::Move, Some(B1)),
    (MovW, "movw", "mov", Kind::Move, Some(B2)),
    (MovL, "movl", "mov", Kind::Move, Some(B4)),
    (MovQ, "movq", "mov", Kind::Move, Some(B8)),
    (MovabsQ, "movabsq", "movabs", Kind::Movabs, Some(B8)),
    // Sign/zero extensions.
    (Movsbw, "movsbw", "movsbw", Kind::Ext { src: B1, dst: B2 }, Some(B2)),
    (Movsbl, "movsbl", "movsbl", Kind::Ext { src: B1, dst: B4 }, Some(B4)),
    (Movsbq, "movsbq", "movsbq", Kind::Ext { src: B1, dst: B8 }, Some(B8)),
    (Movswl, "movswl", "movswl", Kind::Ext { src: B2, dst: B4 }, Some(B4)),
    (Movswq, "movswq", "movswq", Kind::Ext { src: B2, dst: B8 }, Some(B8)),
    (Movslq, "movslq", "movslq", Kind::Ext { src: B4, dst: B8 }, Some(B8)),
    (Movzbw, "movzbw", "movzbw", Kind::Ext { src: B1, dst: B2 }, Some(B2)),
    (Movzbl, "movzbl", "movzbl", Kind::Ext { src: B1, dst: B4 }, Some(B4)),
    (Movzbq, "movzbq", "movzbq", Kind::Ext { src: B1, dst: B8 }, Some(B8)),
    (Movzwl, "movzwl", "movzwl", Kind::Ext { src: B2, dst: B4 }, Some(B4)),
    (Movzwq, "movzwq", "movzwq", Kind::Ext { src: B2, dst: B8 }, Some(B8)),
    // Address computation.
    (LeaL, "leal", "lea", Kind::Lea, Some(B4)),
    (LeaQ, "leaq", "lea", Kind::Lea, Some(B8)),
    // Two-operand ALU.
    (AddB, "addb", "add", Kind::Arith, Some(B1)),
    (AddW, "addw", "add", Kind::Arith, Some(B2)),
    (AddL, "addl", "add", Kind::Arith, Some(B4)),
    (AddQ, "addq", "add", Kind::Arith, Some(B8)),
    (SubB, "subb", "sub", Kind::Arith, Some(B1)),
    (SubW, "subw", "sub", Kind::Arith, Some(B2)),
    (SubL, "subl", "sub", Kind::Arith, Some(B4)),
    (SubQ, "subq", "sub", Kind::Arith, Some(B8)),
    (AndB, "andb", "and", Kind::Arith, Some(B1)),
    (AndW, "andw", "and", Kind::Arith, Some(B2)),
    (AndL, "andl", "and", Kind::Arith, Some(B4)),
    (AndQ, "andq", "and", Kind::Arith, Some(B8)),
    (OrB, "orb", "or", Kind::Arith, Some(B1)),
    (OrW, "orw", "or", Kind::Arith, Some(B2)),
    (OrL, "orl", "or", Kind::Arith, Some(B4)),
    (OrQ, "orq", "or", Kind::Arith, Some(B8)),
    (XorB, "xorb", "xor", Kind::Arith, Some(B1)),
    (XorW, "xorw", "xor", Kind::Arith, Some(B2)),
    (XorL, "xorl", "xor", Kind::Arith, Some(B4)),
    (XorQ, "xorq", "xor", Kind::Arith, Some(B8)),
    // Flag-only comparisons.
    (CmpB, "cmpb", "cmp", Kind::Compare, Some(B1)),
    (CmpW, "cmpw", "cmp", Kind::Compare, Some(B2)),
    (CmpL, "cmpl", "cmp", Kind::Compare, Some(B4)),
    (CmpQ, "cmpq", "cmp", Kind::Compare, Some(B8)),
    (TestB, "testb", "test", Kind::Compare, Some(B1)),
    (TestW, "testw", "test", Kind::Compare, Some(B2)),
    (TestL, "testl", "test", Kind::Compare, Some(B4)),
    (TestQ, "testq", "test", Kind::Compare, Some(B8)),
    // Multiply / divide.
    (ImulL, "imull", "imul", Kind::Mul, Some(B4)),
    (ImulQ, "imulq", "imul", Kind::Mul, Some(B8)),
    (IdivL, "idivl", "idiv", Kind::Div, Some(B4)),
    (IdivQ, "idivq", "idiv", Kind::Div, Some(B8)),
    (DivL, "divl", "div", Kind::Div, Some(B4)),
    (DivQ, "divq", "div", Kind::Div, Some(B8)),
    (MulL, "mull", "mul", Kind::Div, Some(B4)),
    (MulQ, "mulq", "mul", Kind::Div, Some(B8)),
    // One-operand RMW.
    (NegL, "negl", "neg", Kind::Unary, Some(B4)),
    (NegQ, "negq", "neg", Kind::Unary, Some(B8)),
    (NotL, "notl", "not", Kind::Unary, Some(B4)),
    (NotQ, "notq", "not", Kind::Unary, Some(B8)),
    (IncL, "incl", "inc", Kind::Unary, Some(B4)),
    (IncQ, "incq", "inc", Kind::Unary, Some(B8)),
    (DecL, "decl", "dec", Kind::Unary, Some(B4)),
    (DecQ, "decq", "dec", Kind::Unary, Some(B8)),
    // Shifts.
    (ShlB, "shlb", "shl", Kind::Shift, Some(B1)),
    (ShlL, "shll", "shl", Kind::Shift, Some(B4)),
    (ShlQ, "shlq", "shl", Kind::Shift, Some(B8)),
    (ShrB, "shrb", "shr", Kind::Shift, Some(B1)),
    (ShrL, "shrl", "shr", Kind::Shift, Some(B4)),
    (ShrQ, "shrq", "shr", Kind::Shift, Some(B8)),
    (SarL, "sarl", "sar", Kind::Shift, Some(B4)),
    (SarQ, "sarq", "sar", Kind::Shift, Some(B8)),
    // Implicit-operand sign conversions.
    (Cltq, "cltq", "cltq", Kind::SignCvt, None),
    (Cltd, "cltd", "cltd", Kind::SignCvt, None),
    (Cqto, "cqto", "cqto", Kind::SignCvt, None),
    // Stack & control flow.
    (PushQ, "pushq", "push", Kind::Push, Some(B8)),
    (PopQ, "popq", "pop", Kind::Pop, Some(B8)),
    (Leave, "leave", "leave", Kind::Leave, None),
    (Ret, "ret", "ret", Kind::Ret, None),
    (CallQ, "callq", "callq", Kind::Call, None),
    (Jmp, "jmp", "jmp", Kind::Jmp, None),
    (Je, "je", "je", Kind::Jcc, None),
    (Jne, "jne", "jne", Kind::Jcc, None),
    (Jl, "jl", "jl", Kind::Jcc, None),
    (Jle, "jle", "jle", Kind::Jcc, None),
    (Jg, "jg", "jg", Kind::Jcc, None),
    (Jge, "jge", "jge", Kind::Jcc, None),
    (Jb, "jb", "jb", Kind::Jcc, None),
    (Jbe, "jbe", "jbe", Kind::Jcc, None),
    (Ja, "ja", "ja", Kind::Jcc, None),
    (Jae, "jae", "jae", Kind::Jcc, None),
    (Js, "js", "js", Kind::Jcc, None),
    (Jns, "jns", "jns", Kind::Jcc, None),
    // Flag materialization.
    (Sete, "sete", "sete", Kind::SetCc, Some(B1)),
    (Setne, "setne", "setne", Kind::SetCc, Some(B1)),
    (Setl, "setl", "setl", Kind::SetCc, Some(B1)),
    (Setle, "setle", "setle", Kind::SetCc, Some(B1)),
    (Setg, "setg", "setg", Kind::SetCc, Some(B1)),
    (Setge, "setge", "setge", Kind::SetCc, Some(B1)),
    (Setb, "setb", "setb", Kind::SetCc, Some(B1)),
    (Setbe, "setbe", "setbe", Kind::SetCc, Some(B1)),
    (Seta, "seta", "seta", Kind::SetCc, Some(B1)),
    (Setae, "setae", "setae", Kind::SetCc, Some(B1)),
    // SSE scalar floating point.
    (Movss, "movss", "movss", Kind::SseMove, Some(B4)),
    (Movsd, "movsd", "movsd", Kind::SseMove, Some(B8)),
    (Movaps, "movaps", "movaps", Kind::SseMove, None),
    (Addss, "addss", "addss", Kind::SseArith, Some(B4)),
    (Addsd, "addsd", "addsd", Kind::SseArith, Some(B8)),
    (Subss, "subss", "subss", Kind::SseArith, Some(B4)),
    (Subsd, "subsd", "subsd", Kind::SseArith, Some(B8)),
    (Mulss, "mulss", "mulss", Kind::SseArith, Some(B4)),
    (Mulsd, "mulsd", "mulsd", Kind::SseArith, Some(B8)),
    (Divss, "divss", "divss", Kind::SseArith, Some(B4)),
    (Divsd, "divsd", "divsd", Kind::SseArith, Some(B8)),
    (Ucomiss, "ucomiss", "ucomiss", Kind::SseCmp, Some(B4)),
    (Ucomisd, "ucomisd", "ucomisd", Kind::SseCmp, Some(B8)),
    (Cvtsi2ss, "cvtsi2ss", "cvtsi2ss", Kind::SseCvt, Some(B4)),
    (Cvtsi2sd, "cvtsi2sd", "cvtsi2sd", Kind::SseCvt, Some(B8)),
    (Cvttss2si, "cvttss2si", "cvttss2si", Kind::SseCvt, Some(B4)),
    (Cvttsd2si, "cvttsd2si", "cvttsd2si", Kind::SseCvt, Some(B8)),
    (Cvtss2sd, "cvtss2sd", "cvtss2sd", Kind::SseCvt, Some(B8)),
    (Cvtsd2ss, "cvtsd2ss", "cvtsd2ss", Kind::SseCvt, Some(B4)),
    (Pxor, "pxor", "pxor", Kind::SseZero, None),
    (Xorps, "xorps", "xorps", Kind::SseZero, Some(B4)),
    (Xorpd, "xorpd", "xorpd", Kind::SseZero, Some(B8)),
    // x87 (long double).
    (Flds, "flds", "flds", Kind::X87Load, Some(B4)),
    (Fldl, "fldl", "fldl", Kind::X87Load, Some(B8)),
    (Fldt, "fldt", "fldt", Kind::X87Load, None),
    (Fstps, "fstps", "fstps", Kind::X87Store, Some(B4)),
    (Fstpl, "fstpl", "fstpl", Kind::X87Store, Some(B8)),
    (Fstpt, "fstpt", "fstpt", Kind::X87Store, None),
    (Faddp, "faddp", "faddp", Kind::X87Arith, None),
    (Fsubp, "fsubp", "fsubp", Kind::X87Arith, None),
    (Fmulp, "fmulp", "fmulp", Kind::X87Arith, None),
    (Fdivp, "fdivp", "fdivp", Kind::X87Arith, None),
    (Fchs, "fchs", "fchs", Kind::X87Arith, None),
    (Fucomip, "fucomip", "fucomip", Kind::X87Arith, None),
    (Fld1, "fld1", "fld1", Kind::X87Arith, None),
    (Fldz, "fldz", "fldz", Kind::X87Arith, None),
    // Padding.
    (Nop, "nop", "nop", Kind::Nop, None),
}

impl Mnemonic {
    /// Stable opcode byte used by the binary encoding.
    pub fn opcode(self) -> u8 {
        // Every variant appears in ALL (the table is generated from
        // the enum), so the search always succeeds; 0 is an
        // unreachable fallback, not a meaning.
        Mnemonic::ALL.iter().position(|m| *m == self).unwrap_or(0) as u8
    }

    /// Inverse of [`Mnemonic::opcode`].
    pub fn from_opcode(op: u8) -> Option<Mnemonic> {
        Mnemonic::ALL.get(op as usize).copied()
    }

    /// Byte size of the memory access this mnemonic performs when one
    /// of its operands is a memory reference. `fldt`/`fstpt` access the
    /// 80-bit x87 slot (10 bytes).
    pub fn mem_access_bytes(self) -> Option<u32> {
        match self {
            Mnemonic::Fldt | Mnemonic::Fstpt => Some(10),
            Mnemonic::Movaps => Some(16),
            // For extensions, the memory operand is always the source.
            Mnemonic::Movsbw
            | Mnemonic::Movsbl
            | Mnemonic::Movsbq
            | Mnemonic::Movzbw
            | Mnemonic::Movzbl
            | Mnemonic::Movzbq => Some(1),
            Mnemonic::Movswl | Mnemonic::Movswq | Mnemonic::Movzwl | Mnemonic::Movzwq => Some(2),
            _ => self.width().map(Width::bytes),
        }
    }

    /// Whether this is a control-flow transfer (call/jmp/jcc/ret).
    pub fn is_control_flow(self) -> bool {
        matches!(self.kind(), Kind::Call | Kind::Jmp | Kind::Jcc | Kind::Ret)
    }

    /// Resolves a printed AT&T name back to a mnemonic: tries the full
    /// spelling first, then re-attaches a width suffix inferred from a
    /// register operand (`hint`), which undoes the objdump-style
    /// suffix elision.
    pub fn resolve_name(name: &str, hint: Option<Width>) -> Option<Mnemonic> {
        if let Some(m) = Mnemonic::from_full_name(name) {
            return Some(m);
        }
        let mut candidates = Vec::new();
        if let Some(w) = hint {
            candidates.push(format!("{name}{}", w.att_suffix()));
        }
        // Stack ops and movabs are always 64-bit.
        candidates.push(format!("{name}q"));
        candidates
            .into_iter()
            .find_map(|c| Mnemonic::from_full_name(&c))
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.full_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_names_are_unique() {
        let mut names: Vec<_> = Mnemonic::ALL.iter().map(|m| m.full_name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate full mnemonic names");
    }

    #[test]
    fn opcode_roundtrip() {
        for &m in Mnemonic::ALL {
            assert_eq!(Mnemonic::from_opcode(m.opcode()), Some(m));
        }
        assert!(Mnemonic::ALL.len() <= 256, "opcodes must fit one byte");
    }

    #[test]
    fn full_name_roundtrip() {
        for &m in Mnemonic::ALL {
            assert_eq!(Mnemonic::from_full_name(m.full_name()), Some(m));
        }
    }

    #[test]
    fn resolve_elided_suffix() {
        assert_eq!(
            Mnemonic::resolve_name("mov", Some(Width::B8)),
            Some(Mnemonic::MovQ)
        );
        assert_eq!(
            Mnemonic::resolve_name("mov", Some(Width::B4)),
            Some(Mnemonic::MovL)
        );
        assert_eq!(Mnemonic::resolve_name("movl", None), Some(Mnemonic::MovL));
        assert_eq!(Mnemonic::resolve_name("push", None), Some(Mnemonic::PushQ));
        assert_eq!(
            Mnemonic::resolve_name("lea", Some(Width::B8)),
            Some(Mnemonic::LeaQ)
        );
        assert_eq!(Mnemonic::resolve_name("bogus", Some(Width::B8)), None);
    }

    #[test]
    fn mem_access_bytes_for_typed_moves() {
        assert_eq!(Mnemonic::MovB.mem_access_bytes(), Some(1));
        assert_eq!(Mnemonic::MovQ.mem_access_bytes(), Some(8));
        assert_eq!(Mnemonic::Movss.mem_access_bytes(), Some(4));
        assert_eq!(Mnemonic::Fldt.mem_access_bytes(), Some(10));
        assert_eq!(Mnemonic::Movzbl.mem_access_bytes(), Some(1));
        assert_eq!(Mnemonic::Ret.mem_access_bytes(), None);
    }

    #[test]
    fn control_flow_predicate() {
        assert!(Mnemonic::CallQ.is_control_flow());
        assert!(Mnemonic::Jne.is_control_flow());
        assert!(!Mnemonic::MovQ.is_control_flow());
    }
}
