//! AT&T-syntax parsing — the inverse of [`crate::fmt`].
//!
//! The parser accepts objdump-style lines, including suffix-elided
//! mnemonics (`mov %rax,(%rsp)`) and symbolized targets
//! (`callq 0x4044d0 <memchr@plt>`); symbols are returned alongside the
//! instruction so callers can rebuild symbol tables from listings.

use crate::insn::{Insn, MemRef, Operand};
use crate::mnemonic::Mnemonic;
use crate::reg::{Gpr, Width, Xmm};
use std::error::Error;
use std::fmt;

/// Error parsing an AT&T instruction line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line was empty.
    Empty,
    /// The mnemonic is not in the supported subset.
    UnknownMnemonic(String),
    /// An operand could not be parsed.
    BadOperand(String),
    /// A number could not be parsed.
    BadNumber(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty instruction line"),
            ParseError::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            ParseError::BadOperand(o) => write!(f, "malformed operand `{o}`"),
            ParseError::BadNumber(n) => write!(f, "malformed number `{n}`"),
        }
    }
}

impl Error for ParseError {}

/// A parsed line: the instruction plus any `<symbol>` annotation that
/// followed its address operand.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedInsn {
    /// The instruction.
    pub insn: Insn,
    /// The symbol objdump printed after the target, if present.
    pub symbol: Option<String>,
}

fn parse_number(s: &str) -> Result<i64, ParseError> {
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| ParseError::BadNumber(s.into()))?
    } else {
        s.parse::<u64>()
            .map_err(|_| ParseError::BadNumber(s.into()))?
    };
    let v = v as i64;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_reg(s: &str) -> Result<Operand, ParseError> {
    let name = s
        .strip_prefix('%')
        .ok_or_else(|| ParseError::BadOperand(s.into()))?;
    if let Some(x) = Xmm::parse_name(name) {
        return Ok(Operand::Xmm(x));
    }
    Gpr::parse_name(name)
        .map(Operand::Reg)
        .ok_or_else(|| ParseError::BadOperand(s.into()))
}

fn parse_mem(s: &str) -> Result<Operand, ParseError> {
    // disp(base,index,scale) — any piece may be absent.
    let open = s.find('(');
    let (disp_str, inner) = match open {
        Some(i) => {
            // `)` before `(` (e.g. `)x(`) is hostile input, not a
            // memory operand; rejecting it also keeps the slice below
            // in bounds.
            let close = s
                .rfind(')')
                .filter(|&c| c > i)
                .ok_or_else(|| ParseError::BadOperand(s.into()))?;
            (&s[..i], Some(&s[i + 1..close]))
        }
        None => (s, None),
    };
    let disp = if disp_str.is_empty() {
        0
    } else {
        parse_number(disp_str)?
    };
    let Some(inner) = inner else {
        // Bare number with no parens: absolute memory reference.
        let addr = u64::try_from(disp).map_err(|_| ParseError::BadOperand(s.into()))?;
        return Ok(Operand::Abs(addr));
    };
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    let base = match parts.first() {
        Some(&"") | None => None,
        Some(r) => Some(
            r.parse::<Gpr>()
                .map_err(|_| ParseError::BadOperand(s.into()))?,
        ),
    };
    let index = if parts.len() >= 2 {
        let ireg = parts[1]
            .parse::<Gpr>()
            .map_err(|_| ParseError::BadOperand(s.into()))?;
        let scale = if parts.len() >= 3 {
            parse_number(parts[2])? as u8
        } else {
            1
        };
        if !matches!(scale, 1 | 2 | 4 | 8) {
            return Err(ParseError::BadOperand(s.into()));
        }
        Some((ireg, scale))
    } else {
        None
    };
    let disp = i32::try_from(disp).map_err(|_| ParseError::BadOperand(s.into()))?;
    Ok(Operand::Mem(MemRef { base, index, disp }))
}

fn parse_operand(s: &str, is_branch: bool) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(imm) = s.strip_prefix('$') {
        return Ok(Operand::Imm(parse_number(imm)?));
    }
    if s.starts_with('%') {
        return parse_reg(s);
    }
    if is_branch {
        let v = parse_number(s)?;
        let addr = u64::try_from(v).map_err(|_| ParseError::BadOperand(s.into()))?;
        return Ok(Operand::Addr(addr));
    }
    parse_mem(s)
}

/// Splits the operand field on commas that are *outside* parentheses,
/// so `-0x300(%rbp,%r9,4),%rax` yields two operands.
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

/// Parses one AT&T instruction line.
///
/// # Errors
///
/// Returns [`ParseError`] when the mnemonic is outside the supported
/// subset or an operand is malformed.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), cati_asm::parse::ParseError> {
/// let p = cati_asm::parse::parse_insn("movl $0x100,0xb8(%rsp)")?;
/// assert_eq!(p.insn.to_string(), "movl $0x100,0xb8(%rsp)");
/// # Ok(())
/// # }
/// ```
pub fn parse_insn(line: &str) -> Result<ParsedInsn, ParseError> {
    let line = line.trim();
    // Peel a trailing `<symbol>` annotation.
    let (line, symbol) = match (line.rfind('<'), line.ends_with('>')) {
        (Some(lt), true) => (
            line[..lt].trim_end(),
            Some(line[lt + 1..line.len() - 1].to_string()),
        ),
        _ => (line, None),
    };
    let mut parts = line.splitn(2, char::is_whitespace);
    let name = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or(ParseError::Empty)?;
    let rest = parts.next().unwrap_or("").trim();

    // Branch targets are bare numbers; detect branch-ish names first
    // (they never carry elided suffixes).
    let branchish = Mnemonic::from_full_name(name)
        .map(Mnemonic::is_control_flow)
        .unwrap_or(false);

    let operand_strs = if rest.is_empty() {
        Vec::new()
    } else {
        split_operands(rest)
    };
    let operands = operand_strs
        .iter()
        .map(|s| parse_operand(s, branchish))
        .collect::<Result<Vec<_>, _>>()?;

    // Resolve the mnemonic, re-attaching an elided width suffix using
    // the first register operand as the hint.
    let hint: Option<Width> = operands.iter().find_map(|o| o.as_gpr().map(Gpr::width));
    let mnemonic = Mnemonic::resolve_name(name, hint)
        .ok_or_else(|| ParseError::UnknownMnemonic(name.into()))?;

    Ok(ParsedInsn {
        insn: Insn::new(mnemonic, operands),
        symbol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmt::format_insn;
    use crate::fmt::NoSymbols;
    use crate::reg::regs;

    fn roundtrip(line: &str) {
        let parsed = parse_insn(line).unwrap_or_else(|e| panic!("parse `{line}`: {e}"));
        assert_eq!(
            format_insn(&parsed.insn, &NoSymbols),
            line,
            "roundtrip of `{line}`"
        );
    }

    #[test]
    fn roundtrips_paper_examples() {
        // The instructions visible in paper Figures 1, 2 and Table II.
        roundtrip("movq $0x0,0xa8(%rsp)");
        roundtrip("lea 0x120(%rsp),%rax");
        roundtrip("movslq %esi,%rsi");
        roundtrip("movl $0x100,0xb8(%rsp)");
        roundtrip("lea (%rdi,%rsi,1),%r15");
        roundtrip("movb $0x0,0xc0(%rsp)");
        roundtrip("mov %rax,0xb0(%rsp)");
        roundtrip("lea 0x220(%rsp),%rax");
        roundtrip("mov %rdi,%rbp");
        roundtrip("mov $0x3c,%esi");
        roundtrip("sub %rbp,%rdx");
        roundtrip("lea -0x300(%rbp,%r9,4),%rax");
    }

    #[test]
    fn parses_branch_targets() {
        let p = parse_insn("jmp 0x3bc59").unwrap();
        assert_eq!(p.insn.target(), Some(0x3bc59));
        assert_eq!(p.symbol, None);
    }

    #[test]
    fn parses_symbolized_call() {
        let p = parse_insn("callq 0x4044d0 <memchr@plt>").unwrap();
        assert_eq!(p.insn.target(), Some(0x4044d0));
        assert_eq!(p.symbol.as_deref(), Some("memchr@plt"));
    }

    #[test]
    fn suffix_inference_uses_register_width() {
        assert_eq!(
            parse_insn("mov %eax,%ebx").unwrap().insn.mnemonic,
            Mnemonic::MovL
        );
        assert_eq!(
            parse_insn("mov %rax,%rbx").unwrap().insn.mnemonic,
            Mnemonic::MovQ
        );
        assert_eq!(
            parse_insn("push %rbp").unwrap().insn.mnemonic,
            Mnemonic::PushQ
        );
    }

    #[test]
    fn parses_absolute_memory() {
        let p = parse_insn("movq 0x601040,%rax").unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(p.insn.operands[0], Operand::Abs(0x601040)));
    }

    #[test]
    fn parses_negative_immediates() {
        let p = parse_insn("add $-0xd0,%rax").unwrap();
        assert_eq!(p.insn.operands[0], Operand::Imm(-0xd0));
    }

    #[test]
    fn rejects_junk() {
        assert!(matches!(parse_insn(""), Err(ParseError::Empty)));
        assert!(matches!(
            parse_insn("frobnicate %rax"),
            Err(ParseError::UnknownMnemonic(_))
        ));
        assert!(parse_insn("mov %zzz,%rax").is_err());
        assert!(parse_insn("movl $0x1,0x4(%rbp,%r9,3)").is_err());
    }

    #[test]
    fn close_paren_before_open_is_an_error_not_a_panic() {
        // Regression: `)x(` used to slice `s[i+1..close]` with
        // close < i and panic.
        assert!(matches!(
            parse_insn("movl )x(,%eax"),
            Err(ParseError::BadOperand(_))
        ));
        assert!(parse_insn("mov ),%rax").is_err());
        assert!(parse_insn(")(").is_err());
    }

    #[test]
    fn index_only_memref() {
        let p = parse_insn("mov (,%rsi,8),%rax").unwrap();
        let m = p.insn.operands[0].as_mem().unwrap();
        assert_eq!(m.base, None);
        assert_eq!(m.index, Some((regs::rsi(), 8)));
    }

    #[test]
    fn zero_operand_lines() {
        assert_eq!(parse_insn("ret").unwrap().insn.mnemonic, Mnemonic::Ret);
        assert_eq!(parse_insn("cltq").unwrap().insn.mnemonic, Mnemonic::Cltq);
        assert_eq!(parse_insn("leave").unwrap().insn.mnemonic, Mnemonic::Leave);
    }
}
