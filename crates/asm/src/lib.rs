//! `cati-asm` — the x86-64 instruction substrate.
//!
//! CATI consumes disassembly listings of stripped x86-64 binaries.
//! This crate provides everything between raw bytes and the token
//! stream the classifier embeds:
//!
//! - [`reg`], [`mnemonic`], [`insn`] — the instruction model (16 GPRs
//!   at four widths, SSE registers, ~125 mnemonics with behavioural
//!   metadata);
//! - [`fmt`] / [`parse`] — objdump-flavoured AT&T formatting and
//!   parsing, including width-suffix elision and `<symbol>` targets;
//! - [`codec`] — a reversible byte encoding plus linear-sweep
//!   disassembly (see DESIGN.md for the substitution note);
//! - [`binary`] — the executable container with symbol table, debug
//!   section and `strip`;
//! - [`generalize`] — paper Table II operand generalization into the
//!   three-token-per-instruction form.
//!
//! # Example
//!
//! ```
//! use cati_asm::parse::parse_insn;
//! use cati_asm::generalize::generalize;
//! use cati_asm::fmt::NoSymbols;
//!
//! # fn main() -> Result<(), cati_asm::parse::ParseError> {
//! let insn = parse_insn("lea -0x300(%rbp,%r9,4),%rax")?.insn;
//! let gen = generalize(&insn, &NoSymbols);
//! assert_eq!(gen.to_string(), "lea -0xIMM(%rbp,%r9,4) %rax");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod codec;
pub mod fmt;
pub mod generalize;
pub mod insn;
pub mod mnemonic;
pub mod parse;
pub mod reg;

pub use binary::{Binary, Symbol};
pub use codec::{DecodeError, Located};
pub use fmt::{format_insn, NoSymbols, SymbolResolver};
pub use generalize::{generalize, GenInsn, ADDR, BLANK, FUNC, TOKENS_PER_INSN};
pub use insn::{Insn, MemAccess, MemRef, Operand};
pub use mnemonic::{Kind, Mnemonic};
pub use reg::{regs, Gpr, Width, Xmm};
