//! AT&T-syntax formatting, objdump style.
//!
//! Two knobs matter for CATI's token stream:
//!
//! - width suffixes are elided when a register operand pins the width
//!   (`mov %rax,0xb0(%rsp)` vs `movl $0x100,0xb8(%rsp)`), and
//! - call/jump targets print as hex addresses, optionally followed by
//!   `<symbol>` when a symbol table is supplied — which is exactly the
//!   part stripping removes.

use crate::insn::{Insn, MemRef, Operand};
use std::fmt;

/// Resolves a code address to a symbol name, objdump's `<name>` part.
pub trait SymbolResolver {
    /// The symbol covering `addr`, if any.
    fn symbol_at(&self, addr: u64) -> Option<&str>;
}

/// A resolver that knows no symbols — a stripped binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoSymbols;

impl SymbolResolver for NoSymbols {
    fn symbol_at(&self, _addr: u64) -> Option<&str> {
        None
    }
}

fn fmt_hex(f: &mut fmt::Formatter<'_>, v: i64) -> fmt::Result {
    if v < 0 {
        write!(f, "-0x{:x}", -(v as i128))
    } else {
        write!(f, "0x{v:x}")
    }
}

struct DisplayMem(MemRef);

impl fmt::Display for DisplayMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        if m.disp != 0 || (m.base.is_none() && m.index.is_none()) {
            fmt_hex(f, m.disp as i64)?;
        }
        match (m.base, m.index) {
            (None, None) => Ok(()),
            (Some(b), None) => write!(f, "({b})"),
            (Some(b), Some((i, s))) => write!(f, "({b},{i},{s})"),
            (None, Some((i, s))) => write!(f, "(,{i},{s})"),
        }
    }
}

/// Formats one operand.
struct DisplayOperand<'a, R: SymbolResolver> {
    op: &'a Operand,
    symbols: &'a R,
}

impl<R: SymbolResolver> fmt::Display for DisplayOperand<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Xmm(x) => write!(f, "{x}"),
            Operand::Imm(v) => {
                write!(f, "$")?;
                fmt_hex(f, *v)
            }
            Operand::Mem(m) => write!(f, "{}", DisplayMem(*m)),
            Operand::Abs(a) => write!(f, "0x{a:x}"),
            Operand::Addr(a) => {
                write!(f, "0x{a:x}")?;
                if let Some(sym) = self.symbols.symbol_at(*a) {
                    write!(f, " <{sym}>")?;
                }
                Ok(())
            }
        }
    }
}

/// Renders `insn` in AT&T syntax with objdump conventions, resolving
/// call/jump targets through `symbols`.
pub fn format_insn<R: SymbolResolver>(insn: &Insn, symbols: &R) -> String {
    let name = if insn.has_reg_operand() {
        insn.mnemonic.base_name()
    } else {
        insn.mnemonic.full_name()
    };
    if insn.operands.is_empty() {
        return name.to_string();
    }
    let ops: Vec<String> = insn
        .operands
        .iter()
        .map(|op| DisplayOperand { op, symbols }.to_string())
        .collect();
    format!("{name} {}", ops.join(","))
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_insn(self, &NoSymbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnemonic::Mnemonic;
    use crate::reg::{regs, Width};

    struct OneSym;
    impl SymbolResolver for OneSym {
        fn symbol_at(&self, addr: u64) -> Option<&str> {
            (addr == 0x4044d0).then_some("memchr@plt")
        }
    }

    #[test]
    fn suffix_kept_for_imm_to_mem() {
        let i = Insn::op2(
            Mnemonic::MovL,
            Operand::Imm(0x100),
            MemRef::base_disp(regs::rsp(), 0xb8),
        );
        assert_eq!(i.to_string(), "movl $0x100,0xb8(%rsp)");
    }

    #[test]
    fn suffix_elided_with_reg_operand() {
        let i = Insn::op2(
            Mnemonic::MovQ,
            regs::rax(),
            MemRef::base_disp(regs::rsp(), 0xb0),
        );
        assert_eq!(i.to_string(), "mov %rax,0xb0(%rsp)");
    }

    #[test]
    fn lea_prints_unsuffixed() {
        let i = Insn::op2(
            Mnemonic::LeaQ,
            MemRef::base_disp(regs::rsp(), 0x220),
            regs::rax(),
        );
        assert_eq!(i.to_string(), "lea 0x220(%rsp),%rax");
    }

    #[test]
    fn base_index_scale() {
        let i = Insn::op2(
            Mnemonic::LeaQ,
            MemRef::base_index(regs::rdi(), regs::rsi(), 1, 0),
            Operand::Reg(regs::r15()),
        );
        assert_eq!(i.to_string(), "lea (%rdi,%rsi,1),%r15");
        let j = Insn::op2(
            Mnemonic::LeaQ,
            MemRef::base_index(regs::rbp(), regs::r9(), 4, -0x300),
            regs::rax(),
        );
        assert_eq!(j.to_string(), "lea -0x300(%rbp,%r9,4),%rax");
    }

    #[test]
    fn call_with_symbol() {
        let i = Insn::op1(Mnemonic::CallQ, Operand::Addr(0x4044d0));
        assert_eq!(format_insn(&i, &OneSym), "callq 0x4044d0 <memchr@plt>");
        assert_eq!(format_insn(&i, &NoSymbols), "callq 0x4044d0");
    }

    #[test]
    fn jump_without_symbol() {
        let i = Insn::op1(Mnemonic::Jmp, Operand::Addr(0x3bc59));
        assert_eq!(i.to_string(), "jmp 0x3bc59");
    }

    #[test]
    fn negative_disp_and_imm() {
        let i = Insn::op2(Mnemonic::AddQ, Operand::Imm(-0xd0), regs::rax());
        assert_eq!(i.to_string(), "add $-0xd0,%rax");
        let j = Insn::op2(
            Mnemonic::MovB,
            Operand::Imm(0),
            MemRef::base_disp(regs::rbp(), -0x11),
        );
        assert_eq!(j.to_string(), "movb $0x0,-0x11(%rbp)");
    }

    #[test]
    fn zero_operand_and_setcc() {
        assert_eq!(Insn::op0(Mnemonic::Ret).to_string(), "ret");
        assert_eq!(Insn::op0(Mnemonic::Cltq).to_string(), "cltq");
        let s = Insn::op1(Mnemonic::Sete, regs::rax().with_width(Width::B1));
        assert_eq!(s.to_string(), "sete %al");
    }

    #[test]
    fn movzbl_keeps_full_name() {
        let i = Insn::op2(
            Mnemonic::Movzbl,
            MemRef::base_disp(regs::rbp(), -0x9),
            regs::rax().with_width(Width::B4),
        );
        assert_eq!(i.to_string(), "movzbl -0x9(%rbp),%eax");
    }
}
