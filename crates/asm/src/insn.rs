//! Instructions and operands.

use crate::mnemonic::{Kind, Mnemonic};
use crate::reg::{Gpr, Width, Xmm};
use serde::{Deserialize, Serialize};

/// A memory reference `disp(base, index, scale)` in AT&T terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base register (64-bit view), if any.
    pub base: Option<Gpr>,
    /// Index register and scale factor (1, 2, 4 or 8), if any.
    pub index: Option<(Gpr, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl MemRef {
    /// `disp(%base)`.
    pub fn base_disp(base: Gpr, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `disp(%base, %index, scale)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i32) -> MemRef {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "bad scale {scale}");
        MemRef {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// Whether the reference is relative to the stack pointer or the
    /// frame pointer — i.e. plausibly a local variable slot.
    pub fn is_frame_relative(self) -> bool {
        self.base.map(|b| b.is_sp() || b.is_bp()).unwrap_or(false)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// General-purpose register.
    Reg(Gpr),
    /// SSE register.
    Xmm(Xmm),
    /// Immediate value (`$imm`).
    Imm(i64),
    /// Memory reference through registers.
    Mem(MemRef),
    /// Absolute memory reference (a global), e.g. `0x601040`.
    Abs(u64),
    /// Code address: a branch or call target.
    Addr(u64),
}

impl Operand {
    /// The GPR inside, if this is a register operand.
    pub fn as_gpr(&self) -> Option<Gpr> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The memory reference inside, if this is a register-relative
    /// memory operand.
    pub fn as_mem(&self) -> Option<MemRef> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// Whether this operand touches memory (register-relative or
    /// absolute).
    pub fn is_memory(&self) -> bool {
        matches!(self, Operand::Mem(_) | Operand::Abs(_))
    }
}

impl From<Gpr> for Operand {
    fn from(r: Gpr) -> Operand {
        Operand::Reg(r)
    }
}

impl From<Xmm> for Operand {
    fn from(x: Xmm) -> Operand {
        Operand::Xmm(x)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

/// How an instruction uses one of its memory operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemAccess {
    /// The memory operand is read.
    Read,
    /// The memory operand is written.
    Write,
    /// The memory operand is read and written (RMW ALU forms).
    ReadWrite,
    /// Only the *address* is computed (`lea`): no dereference, but the
    /// instruction still "operates the variable" in CATI's sense.
    AddressOf,
}

/// One decoded instruction: a mnemonic plus up to two explicit
/// operands (AT&T order: source first, destination last).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Insn {
    /// The operation.
    pub mnemonic: Mnemonic,
    /// Explicit operands in AT&T order.
    pub operands: Vec<Operand>,
}

impl Insn {
    /// Builds an instruction; validates the operand count loosely
    /// (0–2 operands, which covers the whole subset).
    ///
    /// # Panics
    ///
    /// Panics if more than two operands are supplied.
    pub fn new(mnemonic: Mnemonic, operands: Vec<Operand>) -> Insn {
        assert!(
            operands.len() <= 2,
            "{mnemonic} with {} operands",
            operands.len()
        );
        Insn { mnemonic, operands }
    }

    /// Zero-operand instruction.
    pub fn op0(mnemonic: Mnemonic) -> Insn {
        Insn::new(mnemonic, Vec::new())
    }

    /// One-operand instruction.
    pub fn op1(mnemonic: Mnemonic, a: impl Into<Operand>) -> Insn {
        Insn::new(mnemonic, vec![a.into()])
    }

    /// Two-operand instruction (AT&T order: `src, dst`).
    pub fn op2(mnemonic: Mnemonic, src: impl Into<Operand>, dst: impl Into<Operand>) -> Insn {
        Insn::new(mnemonic, vec![src.into(), dst.into()])
    }

    /// The memory operand together with its access mode, if the
    /// instruction has one. These are CATI's *target instructions*:
    /// memory-access and dereference instructions operate exactly one
    /// variable at a time (paper §I).
    pub fn mem_operand(&self) -> Option<(MemRef, MemAccess)> {
        let mem_idx = self.operands.iter().position(Operand::is_memory)?;
        let mem = match self.operands[mem_idx] {
            Operand::Mem(m) => m,
            // Absolute references are globals; variable analysis only
            // tracks frame slots, so surface them with no base.
            Operand::Abs(_) => MemRef {
                base: None,
                index: None,
                disp: 0,
            },
            _ => unreachable!(),
        };
        let access = match self.mnemonic.kind() {
            Kind::Move | Kind::SseMove | Kind::Ext { .. } => {
                if mem_idx == self.operands.len() - 1 {
                    MemAccess::Write
                } else {
                    MemAccess::Read
                }
            }
            Kind::Arith | Kind::Shift => {
                if mem_idx == self.operands.len() - 1 {
                    MemAccess::ReadWrite
                } else {
                    MemAccess::Read
                }
            }
            Kind::Unary => MemAccess::ReadWrite,
            Kind::Compare
            | Kind::SseCmp
            | Kind::SseArith
            | Kind::SseCvt
            | Kind::Mul
            | Kind::Div
            | Kind::X87Load
            | Kind::Push => MemAccess::Read,
            Kind::Pop | Kind::SetCc | Kind::X87Store => MemAccess::Write,
            Kind::Lea => MemAccess::AddressOf,
            _ => return None,
        };
        Some((mem, access))
    }

    /// Branch/call target, if this is a control transfer with an
    /// explicit address operand.
    pub fn target(&self) -> Option<u64> {
        if !self.mnemonic.is_control_flow() {
            return None;
        }
        self.operands.iter().find_map(|o| match o {
            Operand::Addr(a) => Some(*a),
            _ => None,
        })
    }

    /// The width implied by the first GPR operand, used for suffix
    /// elision and for re-resolving parsed base names.
    pub fn gpr_width_hint(&self) -> Option<Width> {
        self.operands
            .iter()
            .find_map(|o| o.as_gpr().map(Gpr::width))
    }

    /// Whether any operand is a GPR or XMM register (objdump elides
    /// the mnemonic width suffix in that case).
    pub fn has_reg_operand(&self) -> bool {
        self.operands
            .iter()
            .any(|o| matches!(o, Operand::Reg(_) | Operand::Xmm(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::regs;

    #[test]
    fn mem_operand_detects_write() {
        // movl $0x8,0x40(%rsp)
        let i = Insn::op2(
            Mnemonic::MovL,
            Operand::Imm(8),
            MemRef::base_disp(regs::rsp(), 0x40),
        );
        let (m, acc) = i.mem_operand().unwrap();
        assert_eq!(m.disp, 0x40);
        assert_eq!(acc, MemAccess::Write);
    }

    #[test]
    fn mem_operand_detects_read() {
        // mov 0xb0(%rsp),%rax
        let i = Insn::op2(
            Mnemonic::MovQ,
            MemRef::base_disp(regs::rsp(), 0xb0),
            regs::rax(),
        );
        assert_eq!(i.mem_operand().unwrap().1, MemAccess::Read);
    }

    #[test]
    fn arith_on_memory_is_rmw() {
        let i = Insn::op2(
            Mnemonic::AddL,
            Operand::Imm(1),
            MemRef::base_disp(regs::rbp(), -4),
        );
        assert_eq!(i.mem_operand().unwrap().1, MemAccess::ReadWrite);
    }

    #[test]
    fn lea_is_address_of() {
        let i = Insn::op2(
            Mnemonic::LeaQ,
            MemRef::base_disp(regs::rsp(), 0x220),
            regs::rax(),
        );
        assert_eq!(i.mem_operand().unwrap().1, MemAccess::AddressOf);
    }

    #[test]
    fn cmp_reads_memory() {
        let i = Insn::op2(
            Mnemonic::CmpL,
            Operand::Imm(0),
            MemRef::base_disp(regs::rbp(), -8),
        );
        assert_eq!(i.mem_operand().unwrap().1, MemAccess::Read);
    }

    #[test]
    fn reg_only_insn_has_no_mem_operand() {
        let i = Insn::op2(Mnemonic::MovQ, regs::rdi(), regs::rbp());
        assert!(i.mem_operand().is_none());
    }

    #[test]
    fn target_of_call() {
        let i = Insn::op1(Mnemonic::CallQ, Operand::Addr(0x4044d0));
        assert_eq!(i.target(), Some(0x4044d0));
        let j = Insn::op2(Mnemonic::MovQ, Operand::Imm(0x4044d0), regs::rax());
        assert_eq!(j.target(), None);
    }

    #[test]
    fn frame_relative_memrefs() {
        assert!(MemRef::base_disp(regs::rsp(), 8).is_frame_relative());
        assert!(MemRef::base_disp(regs::rbp(), -8).is_frame_relative());
        assert!(!MemRef::base_disp(regs::rdi(), 0).is_frame_relative());
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn bad_scale_panics() {
        MemRef::base_index(regs::rdi(), regs::rsi(), 3, 0);
    }
}
