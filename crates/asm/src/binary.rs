//! The binary container: text section, symbol table, debug section.
//!
//! Mirrors the parts of an ELF executable the CATI pipeline touches: a
//! code section mapped at a base address, a symbol table (function
//! names), and an optional debug-information payload. [`Binary::strip`]
//! removes symbols and debug info exactly the way `strip(1)` does.

use crate::codec::{self, DecodeError, Located};
use crate::fmt::SymbolResolver;
use serde::{Deserialize, Serialize};

/// A function symbol: name and code range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Virtual address of the first instruction.
    pub addr: u64,
    /// Code length in bytes.
    pub len: u64,
}

/// An executable image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binary {
    /// Name of the binary (e.g. the application it belongs to).
    pub name: String,
    /// Encoded text section.
    pub text: Vec<u8>,
    /// Virtual base address of the text section.
    pub text_base: u64,
    /// Function symbols (empty after stripping).
    pub symbols: Vec<Symbol>,
    /// Serialized debug-information section (absent after stripping).
    pub debug: Option<Vec<u8>>,
}

impl Binary {
    /// Default base address used by the synthetic linker.
    pub const DEFAULT_BASE: u64 = 0x40_1000;

    /// Disassembles the whole text section by linear sweep.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from the decoder.
    pub fn disassemble(&self) -> Result<Vec<Located>, DecodeError> {
        codec::linear_sweep(&self.text, self.text_base)
    }

    /// Returns a stripped copy: no symbols, no debug info, same code.
    pub fn strip(&self) -> Binary {
        Binary {
            name: self.name.clone(),
            text: self.text.clone(),
            text_base: self.text_base,
            symbols: Vec::new(),
            debug: None,
        }
    }

    /// Whether the binary has been stripped.
    pub fn is_stripped(&self) -> bool {
        self.symbols.is_empty() && self.debug.is_none()
    }

    /// The symbol covering `addr`, if any.
    pub fn symbol_at(&self, addr: u64) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.addr <= addr && addr < s.addr + s.len.max(1))
    }
}

impl SymbolResolver for Binary {
    fn symbol_at(&self, addr: u64) -> Option<&str> {
        Binary::symbol_at(self, addr).map(|s| s.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmt::format_insn;
    use crate::insn::{Insn, Operand};
    use crate::mnemonic::Mnemonic;
    use crate::reg::regs;

    fn sample() -> Binary {
        let insns = vec![
            Insn::op1(Mnemonic::PushQ, regs::rbp()),
            Insn::op2(Mnemonic::MovQ, regs::rsp(), regs::rbp()),
            Insn::op1(Mnemonic::CallQ, Operand::Addr(Binary::DEFAULT_BASE)),
            Insn::op0(Mnemonic::Ret),
        ];
        let text = codec::encode_all(&insns);
        let len = text.len() as u64;
        Binary {
            name: "demo".into(),
            text,
            text_base: Binary::DEFAULT_BASE,
            symbols: vec![Symbol {
                name: "main".into(),
                addr: Binary::DEFAULT_BASE,
                len,
            }],
            debug: Some(vec![1, 2, 3]),
        }
    }

    #[test]
    fn disassemble_roundtrip() {
        let b = sample();
        let insns = b.disassemble().unwrap();
        assert_eq!(insns.len(), 4);
        assert_eq!(insns[0].addr, Binary::DEFAULT_BASE);
    }

    #[test]
    fn strip_removes_symbols_and_debug() {
        let b = sample();
        assert!(!b.is_stripped());
        let s = b.strip();
        assert!(s.is_stripped());
        assert_eq!(s.text, b.text);
        // Symbolized formatting degrades gracefully.
        let insns = s.disassemble().unwrap();
        let call = &insns[2].insn;
        assert_eq!(format_insn(call, &b), "callq 0x401000 <main>");
        assert_eq!(format_insn(call, &s), "callq 0x401000");
    }

    #[test]
    fn symbol_lookup_by_range() {
        let b = sample();
        assert_eq!(b.symbol_at(Binary::DEFAULT_BASE + 2).unwrap().name, "main");
        assert!(b.symbol_at(0).is_none());
    }
}
