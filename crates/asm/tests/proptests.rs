//! Property-based tests: arbitrary instructions roundtrip through the
//! byte codec and the AT&T formatter/parser.

use cati_asm::codec::{decode_insn, encode_all, encode_insn, linear_sweep, linear_sweep_lenient};
use cati_asm::fmt::{format_insn, NoSymbols};
use cati_asm::generalize::{generalize, TOKENS_PER_INSN};
use cati_asm::insn::{Insn, MemRef, Operand};
use cati_asm::mnemonic::{Kind, Mnemonic};
use cati_asm::reg::{Gpr, Width, Xmm};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B1),
        Just(Width::B2),
        Just(Width::B4),
        Just(Width::B8)
    ]
}

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16, arb_width()).prop_map(|(n, w)| Gpr::new(n, w))
}

fn arb_gpr64() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(|n| Gpr::new(n, Width::B8))
}

fn arb_mem() -> impl Strategy<Value = MemRef> {
    (
        proptest::option::of(arb_gpr64()),
        proptest::option::of((
            arb_gpr64(),
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        )),
        -0x10000i32..0x10000,
    )
        .prop_map(|(base, index, disp)| MemRef { base, index, disp })
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_gpr().prop_map(Operand::Reg),
        (0u8..16).prop_map(|n| Operand::Xmm(Xmm::new(n))),
        any::<i64>().prop_map(Operand::Imm),
        arb_mem().prop_map(Operand::Mem),
        (1u64..0x7fff_ffff).prop_map(Operand::Abs),
        (1u64..0x7fff_ffff).prop_map(Operand::Addr),
    ]
}

fn arb_mnemonic() -> impl Strategy<Value = Mnemonic> {
    (0..Mnemonic::ALL.len()).prop_map(|i| Mnemonic::ALL[i])
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    (
        arb_mnemonic(),
        proptest::collection::vec(arb_operand(), 0..=2),
    )
        .prop_map(|(m, ops)| Insn::new(m, ops))
}

proptest! {
    #[test]
    fn codec_roundtrips(insn in arb_insn()) {
        let mut buf = Vec::new();
        let len = encode_insn(&mut buf, &insn);
        let (decoded, dlen) = decode_insn(&buf, 0).unwrap();
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(dlen, len);
    }

    #[test]
    fn linear_sweep_roundtrips(insns in proptest::collection::vec(arb_insn(), 0..40)) {
        let bytes = encode_all(&insns);
        let decoded = linear_sweep(&bytes, 0x401000).unwrap();
        prop_assert_eq!(decoded.len(), insns.len());
        for (d, orig) in decoded.iter().zip(&insns) {
            prop_assert_eq!(&d.insn, orig);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_insn(&bytes, 0);
        let _ = linear_sweep(&bytes, 0);
    }

    #[test]
    fn decode_consumes_at_least_one_byte_or_errors(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Termination guarantee for every sweep built on decode_insn:
        // a successful decode makes progress, so no input can wedge a
        // sweep in place.
        if let Ok((_, len)) = decode_insn(&bytes, 0) {
            prop_assert!(len >= 1, "decode succeeded consuming 0 bytes");
            prop_assert!(len <= bytes.len(), "decode consumed past the buffer");
        } else {
            prop_assert!(true);
        }
    }

    #[test]
    fn lenient_sweep_accounts_for_every_byte(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // The resynchronizing sweep must terminate on arbitrary input
        // and place every byte in exactly one instruction or gap.
        let sweep = linear_sweep_lenient(&bytes, 0x401000);
        let mut cursor = 0usize;
        let mut insns = sweep.insns.iter().peekable();
        let mut gaps = sweep.gaps.iter().peekable();
        while cursor < bytes.len() {
            let at_insn = insns
                .peek()
                .is_some_and(|l| (l.addr - 0x401000) as usize == cursor);
            if at_insn {
                let l = insns.next().unwrap();
                prop_assert!(l.len >= 1);
                cursor += l.len as usize;
            } else {
                let g = gaps.next();
                prop_assert!(g.is_some(), "byte {cursor} in neither insn nor gap");
                let g = g.unwrap();
                prop_assert_eq!(g.offset, cursor);
                prop_assert!(g.len >= 1);
                cursor += g.len;
            }
        }
        prop_assert_eq!(cursor, bytes.len());
        prop_assert!(insns.next().is_none(), "instruction past the end");
        prop_assert!(gaps.next().is_none(), "gap past the end");
        // On decodable input the lenient sweep equals the strict one.
        if let Ok(strict) = linear_sweep(&bytes, 0x401000) {
            prop_assert_eq!(sweep.insns, strict);
            prop_assert!(sweep.gaps.is_empty());
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_lines(line in "[ -~]{0,48}") {
        // Printable-ASCII fuzzing of the AT&T parser: any outcome but
        // a panic. (Regression driver for the `)x(` memory-operand
        // slice panic.)
        let _ = cati_asm::parse::parse_insn(&line);
    }

    #[test]
    fn generalize_always_yields_three_tokens(insn in arb_insn()) {
        let g = generalize(&insn, &NoSymbols);
        prop_assert_eq!(g.tokens.len(), TOKENS_PER_INSN);
        for t in g.iter() {
            prop_assert!(!t.is_empty());
        }
    }
}

/// Instructions whose *printed* form is unambiguous must roundtrip
/// through the parser. We restrict to well-formed operand shapes (the
/// kind codegen emits) because e.g. `movl %rax,%rbx` prints as
/// `mov %rax,%rbx` and re-parses as `movq`.
fn arb_wellformed() -> impl Strategy<Value = Insn> {
    // A bare-displacement MemRef prints the same as an absolute
    // address; codegen always anchors locals to a base register, so
    // the roundtrip property only covers based references.
    let arb_mem = || arb_mem().prop_filter("based memref", |m| m.base.is_some());
    let mv = (arb_width(), arb_mem(), 0u8..16, any::<bool>()).prop_map(|(w, m, r, to_mem)| {
        let mn = match w {
            Width::B1 => Mnemonic::MovB,
            Width::B2 => Mnemonic::MovW,
            Width::B4 => Mnemonic::MovL,
            Width::B8 => Mnemonic::MovQ,
        };
        let reg = Gpr::new(r, w);
        if to_mem {
            Insn::op2(mn, reg, m)
        } else {
            Insn::op2(mn, m, reg)
        }
    });
    let imm_to_mem = (arb_width(), arb_mem(), -0x1000i64..0x1000).prop_map(|(w, m, v)| {
        let mn = match w {
            Width::B1 => Mnemonic::MovB,
            Width::B2 => Mnemonic::MovW,
            Width::B4 => Mnemonic::MovL,
            Width::B8 => Mnemonic::MovQ,
        };
        Insn::op2(mn, Operand::Imm(v), m)
    });
    let lea = (arb_mem(), 0u8..16)
        .prop_map(|(m, r)| Insn::op2(Mnemonic::LeaQ, m, Gpr::new(r, Width::B8)));
    let branch = (1u64..0xffff_ffff).prop_map(|a| Insn::op1(Mnemonic::Jne, Operand::Addr(a)));
    prop_oneof![mv, imm_to_mem, lea, branch]
}

proptest! {
    #[test]
    fn printed_form_reparses(insn in arb_wellformed()) {
        let line = format_insn(&insn, &NoSymbols);
        let parsed = cati_asm::parse::parse_insn(&line).unwrap();
        prop_assert_eq!(parsed.insn, insn, "line was `{}`", line);
    }
}

#[test]
fn every_mnemonic_kind_is_reachable() {
    // Sanity net: each behavioural kind is represented by at least one
    // mnemonic, so analysis match arms are all exercised.
    let kinds = [
        Kind::Move,
        Kind::Lea,
        Kind::Arith,
        Kind::Compare,
        Kind::SseMove,
        Kind::X87Load,
        Kind::X87Store,
        Kind::Call,
        Kind::Jcc,
        Kind::SetCc,
    ];
    for k in kinds {
        assert!(
            Mnemonic::ALL.iter().any(|m| m.kind() == k),
            "no mnemonic with kind {k:?}"
        );
    }
}
