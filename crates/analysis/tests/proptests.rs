//! Property tests: extraction is total over arbitrary generated
//! binaries, in both the labeled and the stripped posture.

use cati_analysis::{extract, FeatureView, VUC_LEN};
use cati_synbin::{generate_program, link_program, AppProfile, CodegenOptions, Compiler, OptLevel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_opts() -> impl Strategy<Value = CodegenOptions> {
    (0usize..2, 0u8..4).prop_map(|(c, o)| CodegenOptions {
        compiler: Compiler::ALL[c],
        opt: OptLevel(o),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn extraction_is_total_over_seeds(seed in any::<u64>(), opts in arb_opts()) {
        let profile = AppProfile::new("prop");
        let mut rng = StdRng::seed_from_u64(seed);
        let program = generate_program("p", &profile, &mut rng);
        let binary = link_program(&program, opts, &mut rng);

        let ex = extract(&binary, FeatureView::WithSymbols).unwrap();
        for vuc in &ex.vucs {
            prop_assert_eq!(vuc.insns.len(), VUC_LEN);
            prop_assert!((vuc.var as usize) < ex.vars.len());
            // Labeled-mode VUCs always resolve to a classified variable.
            prop_assert!(vuc.class(&ex.vars).is_some());
        }
        // Variable VUC lists and VUC back-pointers agree.
        for (i, var) in ex.vars.iter().enumerate() {
            for &v in &var.vucs {
                prop_assert_eq!(ex.vucs[v as usize].var as usize, i);
            }
        }

        // Stripped extraction is total and unlabeled.
        let sx = extract(&binary.strip(), FeatureView::Stripped).unwrap();
        for var in &sx.vars {
            prop_assert!(var.class.is_none());
            prop_assert!(var.name.is_none());
        }
    }

    #[test]
    fn label_offsets_cover_stripped_offsets(seed in 0u64..500) {
        // Every labeled variable's slot is also discovered by the
        // symbol-free recovery (it may find more — unclassified slots).
        let profile = AppProfile::new("cover");
        let mut rng = StdRng::seed_from_u64(seed);
        let program = generate_program("p", &profile, &mut rng);
        let binary = link_program(
            &program,
            CodegenOptions { compiler: Compiler::Gcc, opt: OptLevel::O0 },
            &mut rng,
        );
        let labeled = extract(&binary, FeatureView::WithSymbols).unwrap();
        let stripped = extract(&binary.strip(), FeatureView::Stripped).unwrap();
        let keys: std::collections::HashSet<_> =
            stripped.vars.iter().map(|v| v.key).collect();
        let covered = labeled.vars.iter().filter(|v| keys.contains(&v.key)).count();
        // Struct member accesses collapse to the slot base in labeled
        // mode but appear at member offsets in stripped mode, so
        // coverage of exact keys is partial; require a majority.
        prop_assert!(
            covered * 2 >= labeled.vars.len(),
            "{covered}/{} labeled slots found on stripped input",
            labeled.vars.len()
        );
    }
}
