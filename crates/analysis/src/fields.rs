//! Struct member recovery from access idioms (post-vote pass).
//!
//! Once the voting stage decides a variable is `struct` /
//! `struct*`, the scalar class alone is not actionable — ReSym's
//! observation is that recovered *member lists* are what make an
//! inferred type usable. This pass re-scans the decoded bodies (the
//! generalized VUC windows have already collapsed displacements to
//! `IMM`, so raw instructions are required) and clusters
//! member-offset accesses into an inferred `{offset, width}` list:
//!
//! - **direct accesses** — `d(%rbp)` with `base ≤ d < base + span`
//!   are member touches of a by-value struct at `base`;
//! - **pointer chase** — `lea base(%rbp), %r` (address-of) or, for
//!   pointer-classed variables, `mov base(%rbp), %r` taints `%r`;
//!   subsequent `d(%r)` accesses are members at offset `d`, until the
//!   register is clobbered or control flow ends the block;
//! - **interprocedural follow** (only under
//!   [`ContextMode::Interprocedural`]) — a pointer variable loaded
//!   into a System V argument register before a resolved `call` is
//!   re-homed by the callee prologue; loads of that home slot are
//!   chased inside the callee one level deep.
//!
//! The variable's extent (`span`) is an input, mirroring the paper's
//! §IV-A stance that variable *location* recovery is a solved,
//! separate problem: we evaluate member structure given the slot and
//! its size, scored against DWARF ground truth by [`score_fields`].

use crate::assemble::{ContextMode, INT_ARG_REG_NUMS};
use crate::callgraph::CallGraph;
use crate::extract::{detect_frame_base, split_functions, ExtractError, VarKey};
use cati_asm::binary::Binary;
use cati_asm::codec::Located;
use cati_asm::insn::{Insn, MemAccess, Operand};
use cati_asm::mnemonic::Kind;
use cati_asm::reg::Gpr;
use cati_dwarf::{StructDef, TypeTable};
use serde::{Deserialize, Serialize};

/// How far into a callee body the prologue scan looks for the home
/// slot of an argument register.
const PROLOGUE_SCAN: usize = 24;

/// One inferred struct member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldMember {
    /// Byte offset from the start of the aggregate.
    pub offset: u32,
    /// Access width in bytes (0 when only the address was taken).
    pub width: u32,
}

/// The inferred member list of one variable, sorted by offset. When
/// the same offset is touched at several widths, the widest access
/// wins (a `movq` store dominates a later byte-wise poke).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldList {
    /// Deduplicated members in offset order.
    pub members: Vec<FieldMember>,
}

impl FieldList {
    fn insert(&mut self, offset: u32, width: u32) {
        match self.members.iter_mut().find(|m| m.offset == offset) {
            Some(m) => m.width = m.width.max(width),
            None => self.members.push(FieldMember { offset, width }),
        }
    }

    fn finish(mut self) -> FieldList {
        self.members.sort_unstable();
        self
    }
}

/// One variable to recover members for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldQuery {
    /// The variable (function index + frame-slot base).
    pub key: VarKey,
    /// Extent of the aggregate in bytes — member offsets must fall in
    /// `[0, span)`.
    pub span: u32,
    /// Whether the slot holds a *pointer* to the aggregate (`struct*`
    /// vote) rather than the aggregate itself (`struct` vote). Direct
    /// slot accesses then touch the pointer, not members, and plain
    /// loads of the slot seed the pointer chase.
    pub pointer: bool,
}

/// Member-recovery outcome against one DWARF struct definition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldScore {
    /// Predicted offsets that exist in the ground truth.
    pub true_positives: u64,
    /// Predicted offsets with no ground-truth member.
    pub false_positives: u64,
    /// Ground-truth members never predicted.
    pub false_negatives: u64,
    /// True positives whose access width also equals the member size.
    pub width_matches: u64,
}

impl FieldScore {
    /// Fraction of predicted members that are real.
    pub fn precision(&self) -> f64 {
        let p = self.true_positives + self.false_positives;
        if p == 0 {
            return 0.0;
        }
        self.true_positives as f64 / p as f64
    }

    /// Fraction of real members that were predicted.
    pub fn recall(&self) -> f64 {
        let t = self.true_positives + self.false_negatives;
        if t == 0 {
            return 0.0;
        }
        self.true_positives as f64 / t as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Among matched members, how often the access width equals the
    /// declared size (x87 80-bit spills legitimately miss here).
    pub fn width_accuracy(&self) -> f64 {
        if self.true_positives == 0 {
            return 0.0;
        }
        self.width_matches as f64 / self.true_positives as f64
    }

    /// Sums another score into this one (corpus aggregation).
    pub fn absorb(&mut self, other: &FieldScore) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.width_matches += other.width_matches;
    }
}

/// Scores an inferred member list against a DWARF struct definition.
/// Matching is by offset; widths are compared via
/// [`TypeTable::size_of`] on the matched member's type.
pub fn score_fields(pred: &FieldList, truth: &StructDef, types: &TypeTable) -> FieldScore {
    let mut score = FieldScore::default();
    for m in &pred.members {
        match truth.members.iter().find(|t| t.offset == m.offset) {
            Some(t) => {
                score.true_positives += 1;
                if types.size_of(&t.ty) == m.width {
                    score.width_matches += 1;
                }
            }
            None => score.false_positives += 1,
        }
    }
    score.false_negatives = truth
        .members
        .iter()
        .filter(|t| pred.members.iter().all(|m| m.offset != t.offset))
        .count() as u64;
    score
}

/// Recovers member lists for `queries` over a strictly decoded
/// binary. Queries are answered in input order; a query whose
/// function index is out of range yields an empty list.
///
/// # Errors
///
/// Fails if the text section does not decode.
pub fn recover_struct_fields(
    binary: &Binary,
    queries: &[FieldQuery],
    mode: ContextMode,
) -> Result<Vec<FieldList>, ExtractError> {
    let insns = binary.disassemble()?;
    let functions = split_functions(&insns, binary);
    let bodies: Vec<Option<&[Located]>> = functions
        .iter()
        .map(|&(start, end)| Some(&insns[start..end]))
        .collect();
    Ok(recover_fields_in(&bodies, queries, mode))
}

/// [`recover_struct_fields`] over already-split bodies (`None` slots
/// are skipped functions; queries into them yield empty lists).
pub fn recover_fields_in(
    bodies: &[Option<&[Located]>],
    queries: &[FieldQuery],
    mode: ContextMode,
) -> Vec<FieldList> {
    let graph = match mode {
        ContextMode::Interprocedural => Some(CallGraph::build(bodies)),
        ContextMode::FunctionLocal => None,
    };
    queries
        .iter()
        .map(|q| recover_one(bodies, graph.as_ref(), q))
        .collect()
}

fn recover_one(
    bodies: &[Option<&[Located]>],
    graph: Option<&CallGraph>,
    q: &FieldQuery,
) -> FieldList {
    let Some(Some(body)) = bodies.get(q.key.func as usize).copied() else {
        return FieldList::default();
    };
    let base = detect_frame_base(body);
    let mut out = FieldList::default();

    if !q.pointer {
        // Direct accesses inside the extent are member touches.
        for l in body {
            let Some((mem, access)) = l.insn.mem_operand() else {
                continue;
            };
            if access == MemAccess::AddressOf {
                continue; // the address-of seeds the chase below
            }
            if mem.base.map(|b| b.num()) != Some(base.num()) || mem.index.is_some() {
                continue;
            }
            let rel = i64::from(mem.disp) - i64::from(q.key.offset);
            if (0..i64::from(q.span)).contains(&rel) {
                out.insert(rel as u32, access_width(&l.insn));
            }
        }
    }

    // Pointer chase: taint the register that receives the aggregate's
    // address (or the pointer value) and collect its dereferences.
    for (p, l) in body.iter().enumerate() {
        let Some(r) = chase_seed(&l.insn, base, q) else {
            continue;
        };
        chase(body, p + 1, r, q.span, &mut out);
    }

    // Interprocedural follow: pointer flows into an argument register
    // ahead of a resolved call — continue the chase in the callee.
    if let Some(graph) = graph {
        if q.pointer {
            follow_into_callees(bodies, graph, body, base, q, &mut out);
        }
    }

    out.finish()
}

/// The tainted register a seed instruction produces, if any.
fn chase_seed(insn: &Insn, base: Gpr, q: &FieldQuery) -> Option<Gpr> {
    let (mem, access) = insn.mem_operand()?;
    if mem.base.map(|b| b.num()) != Some(base.num())
        || mem.index.is_some()
        || mem.disp != q.key.offset
    {
        return None;
    }
    let wanted = if q.pointer {
        MemAccess::Read // `mov slot(%rbp), %r` — the pointer value
    } else {
        MemAccess::AddressOf // `lea slot(%rbp), %r` — the address
    };
    if access != wanted {
        return None;
    }
    match insn.operands.last()? {
        Operand::Reg(r) => Some(*r),
        _ => None,
    }
}

/// Collects `d(%r)` accesses from `start` until `%r` is clobbered or
/// the basic block ends.
fn chase(body: &[Located], start: usize, r: Gpr, span: u32, out: &mut FieldList) {
    for l in &body[start..] {
        if l.insn.mnemonic.is_control_flow() {
            return; // conservative: blocks end the taint
        }
        if let Some((mem, access)) = l.insn.mem_operand() {
            if mem.base.map(|b| b.num()) == Some(r.num())
                && mem.index.is_none()
                && access != MemAccess::AddressOf
                && (0..i64::from(span)).contains(&i64::from(mem.disp))
            {
                out.insert(mem.disp as u32, access_width(&l.insn));
            }
        }
        if clobbers(&l.insn, r.num()) {
            return;
        }
    }
}

/// Chases the pointer through call edges: a load of the slot into an
/// argument register, followed by a resolved call, re-homes the
/// pointer in the callee's prologue; loads of that home slot continue
/// the chase there.
fn follow_into_callees(
    bodies: &[Option<&[Located]>],
    graph: &CallGraph,
    body: &[Located],
    base: Gpr,
    q: &FieldQuery,
    out: &mut FieldList,
) {
    for (p, l) in body.iter().enumerate() {
        let Some(r) = chase_seed(&l.insn, base, q) else {
            continue;
        };
        if !INT_ARG_REG_NUMS.contains(&r.num()) {
            continue;
        }
        // The next resolved call consumes the argument registers.
        let Some(callee) = (p + 1..body.len()).find_map(|c| {
            body[c]
                .insn
                .mnemonic
                .kind()
                .eq(&Kind::Call)
                .then(|| graph.callee_at(q.key.func, c))
                .flatten()
        }) else {
            continue;
        };
        let Some(Some(callee_body)) = bodies.get(callee as usize).copied() else {
            continue;
        };
        let callee_base = detect_frame_base(callee_body);
        // Prologue home: `mov %argreg, s(%rbp)`.
        let Some(home) = callee_body.iter().take(PROLOGUE_SCAN).find_map(|l| {
            let (mem, access) = l.insn.mem_operand()?;
            let stored = match l.insn.operands.first()? {
                Operand::Reg(src) => *src,
                _ => return None,
            };
            (access == MemAccess::Write
                && stored.num() == r.num()
                && mem.base.map(|b| b.num()) == Some(callee_base.num())
                && mem.index.is_none())
            .then_some(mem.disp)
        }) else {
            continue;
        };
        // Loads of the home slot re-taint a register inside the callee.
        let homed = FieldQuery {
            key: VarKey {
                func: callee,
                offset: home,
            },
            span: q.span,
            pointer: true,
        };
        for (cp, cl) in callee_body.iter().enumerate() {
            if let Some(cr) = chase_seed(&cl.insn, callee_base, &homed) {
                chase(callee_body, cp + 1, cr, q.span, out);
            }
        }
    }
}

/// Bytes the instruction's memory access touches (0 if unknown).
fn access_width(insn: &Insn) -> u32 {
    insn.mnemonic.mem_access_bytes().unwrap_or(0)
}

/// Whether `insn` overwrites register number `num` (destination is
/// the last operand in AT&T order).
fn clobbers(insn: &Insn, num: u8) -> bool {
    let writes_dst = matches!(
        insn.mnemonic.kind(),
        Kind::Move
            | Kind::Movabs
            | Kind::Ext { .. }
            | Kind::Lea
            | Kind::Arith
            | Kind::Shift
            | Kind::Unary
            | Kind::Mul
            | Kind::Pop
            | Kind::SetCc
            | Kind::SseCvt
    );
    if !writes_dst {
        return false;
    }
    matches!(insn.operands.last(), Some(Operand::Reg(r)) if r.num() == num)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_asm::parse::parse_insn;

    fn body_of(lines: &[&str], base_addr: u64) -> Vec<Located> {
        lines
            .iter()
            .enumerate()
            .map(|(k, line)| Located {
                addr: base_addr + k as u64 * 4,
                len: 4,
                insn: parse_insn(line).unwrap().insn,
            })
            .collect()
    }

    #[test]
    fn direct_accesses_cluster_into_members() {
        let body = body_of(
            &[
                "push %rbp",
                "mov %rsp,%rbp",
                "movl $0x1,-0x20(%rbp)",
                "movq $0x2,-0x18(%rbp)",
                "movb $0x3,-0x10(%rbp)",
                "movl $0x4,-0x4(%rbp)", // outside the 24-byte extent
                "ret",
            ],
            0x1000,
        );
        let bodies: Vec<Option<&[Located]>> = vec![Some(&body)];
        let got = recover_fields_in(
            &bodies,
            &[FieldQuery {
                key: VarKey {
                    func: 0,
                    offset: -0x20,
                },
                span: 24,
                pointer: false,
            }],
            ContextMode::FunctionLocal,
        );
        assert_eq!(
            got[0].members,
            vec![
                FieldMember {
                    offset: 0,
                    width: 4
                },
                FieldMember {
                    offset: 8,
                    width: 8
                },
                FieldMember {
                    offset: 16,
                    width: 1
                },
            ]
        );
    }

    #[test]
    fn pointer_chase_stops_at_clobber() {
        let body = body_of(
            &[
                "push %rbp",
                "mov %rsp,%rbp",
                "mov -0x8(%rbp),%rax", // seed: pointer load
                "movl $0x7,0x4(%rax)", // member {4, 4}
                "mov 0x8(%rax),%rax",  // member {8, 8}, then clobber
                "movl $0x9,0xc(%rax)", // rax no longer the struct
                "ret",
            ],
            0x1000,
        );
        let bodies: Vec<Option<&[Located]>> = vec![Some(&body)];
        let got = recover_fields_in(
            &bodies,
            &[FieldQuery {
                key: VarKey {
                    func: 0,
                    offset: -8,
                },
                span: 16,
                pointer: true,
            }],
            ContextMode::FunctionLocal,
        );
        assert_eq!(
            got[0].members,
            vec![
                FieldMember {
                    offset: 4,
                    width: 4
                },
                FieldMember {
                    offset: 8,
                    width: 8
                },
            ]
        );
    }

    #[test]
    fn interproc_mode_follows_pointer_into_callee() {
        let caller = body_of(
            &[
                "push %rbp",
                "mov %rsp,%rbp",
                "mov -0x10(%rbp),%rdi",
                "callq 0x2000",
                "pop %rbp",
                "ret",
            ],
            0x1000,
        );
        let callee = body_of(
            &[
                "push %rbp",
                "mov %rsp,%rbp",
                "mov %rdi,-0x8(%rbp)",
                "mov -0x8(%rbp),%rax",
                "movl $0x1,0x4(%rax)",
                "movq $0x2,0x8(%rax)",
                "pop %rbp",
                "ret",
            ],
            0x2000,
        );
        let bodies: Vec<Option<&[Located]>> = vec![Some(&caller), Some(&callee)];
        let query = FieldQuery {
            key: VarKey {
                func: 0,
                offset: -0x10,
            },
            span: 16,
            pointer: true,
        };
        let local = recover_fields_in(&bodies, &[query], ContextMode::FunctionLocal);
        assert!(local[0].members.is_empty(), "got {:?}", local[0].members);
        let inter = recover_fields_in(&bodies, &[query], ContextMode::Interprocedural);
        assert_eq!(
            inter[0].members,
            vec![
                FieldMember {
                    offset: 4,
                    width: 4
                },
                FieldMember {
                    offset: 8,
                    width: 8
                },
            ]
        );
    }

    #[test]
    fn score_math_is_consistent() {
        use cati_dwarf::{CType, IntWidth, Member, Signedness, StructDef};
        let def = StructDef::layout(
            "s".to_string(),
            vec![
                (
                    "a".to_string(),
                    CType::Integer(IntWidth::Int, Signedness::Signed),
                ),
                (
                    "b".to_string(),
                    CType::Integer(IntWidth::Long, Signedness::Signed),
                ),
            ],
        );
        let types = TypeTable::new();
        let _ = Member {
            name: String::new(),
            ty: CType::Void,
            offset: 0,
        };
        let pred = FieldList {
            members: vec![
                FieldMember {
                    offset: 0,
                    width: 4,
                },
                FieldMember {
                    offset: 8,
                    width: 4,
                }, // width wrong
                FieldMember {
                    offset: 20,
                    width: 4,
                }, // no such member
            ],
        };
        let s = score_fields(&pred, &def, &types);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.width_matches, 1);
        assert!((s.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.recall() - 1.0).abs() < 1e-9);
        assert!(s.f1() > 0.0 && s.width_accuracy() == 0.5);
    }
}
