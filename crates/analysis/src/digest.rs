//! Content digests for cache keys.
//!
//! The on-disk artifact cache addresses extractions and embeddings by
//! *content*: a binary's digest plus (for embeddings) a model
//! fingerprint. FNV-1a over 128 bits is enough — the digest guards a
//! local cache against staleness, not an adversary — and needs no
//! dependency the container lacks.

use cati_asm::binary::Binary;
use std::fmt;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content digest, rendered as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub u128);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a/128 hasher.
#[derive(Debug, Clone)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a length-prefixed byte field, so adjacent
    /// variable-length fields cannot alias each other.
    pub fn update_field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// Absorbs one `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs one `u32` — the framing width of the binary model
    /// container's header and section-table fields.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// The final digest.
    pub fn finish(&self) -> Digest {
        Digest(self.0)
    }
}

/// Digests an arbitrary byte string.
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut h = Fnv128::new();
    h.update(bytes);
    h.finish()
}

/// Digests everything extraction depends on: name, text bytes, base
/// address, the symbol table, and the debug section (whose presence
/// switches labeling, and whose bytes carry the labels). Two binaries
/// with equal digests extract identically; stripping changes the
/// digest.
pub fn digest_binary(binary: &Binary) -> Digest {
    let mut h = Fnv128::new();
    h.update_field(binary.name.as_bytes());
    h.update_field(&binary.text);
    h.update_u64(binary.text_base);
    h.update_u64(binary.symbols.len() as u64);
    for sym in &binary.symbols {
        h.update_field(sym.name.as_bytes());
        h.update_u64(sym.addr);
        h.update_u64(sym.len);
    }
    match &binary.debug {
        Some(bytes) => {
            h.update_u64(1);
            h.update_field(bytes);
        }
        None => h.update_u64(0),
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_match_fnv1a_128() {
        // Published FNV-1a 128-bit test vectors.
        assert_eq!(digest_bytes(b"").0, FNV_OFFSET);
        assert_eq!(
            digest_bytes(b"a").to_string(),
            "d228cb696f1a8caf78912b704e4a8964"
        );
    }

    #[test]
    fn field_framing_prevents_aliasing() {
        let mut a = Fnv128::new();
        a.update_field(b"ab");
        a.update_field(b"c");
        let mut b = Fnv128::new();
        b.update_field(b"a");
        b.update_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn binary_digest_tracks_content_and_stripping() {
        let profile = cati_synbin::AppProfile::new("digest");
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let opts = cati_synbin::CodegenOptions {
            compiler: cati_synbin::Compiler::Gcc,
            opt: cati_synbin::OptLevel::O0,
        };
        let bin = cati_synbin::build_app(&profile, opts, 0.5, &mut rng)
            .remove(0)
            .binary;
        let d = digest_binary(&bin);
        assert_eq!(d, digest_binary(&bin.clone()), "digest must be stable");
        let stripped = bin.strip();
        assert_ne!(d, digest_binary(&stripped), "stripping must change it");
        let mut renamed = bin.clone();
        renamed.name.push('x');
        assert_ne!(d, digest_binary(&renamed), "name is part of the key");
    }
}
