//! `cati-analysis` — variable recovery and VUC extraction.
//!
//! The stage the paper delegates to IDA Pro (plus its own window
//! cutting): disassemble, split functions, detect frame bases, locate
//! the frame-slot variables that memory-access and dereference
//! instructions operate, label them from debug info when present, and
//! cut the 21-instruction Variable Usage Contexts that the classifier
//! consumes. [`stats`] measures the phenomena motivating the paper:
//! orphan variables, uncertain samples and same-type clustering.
//!
//! # Example
//!
//! ```
//! use cati_analysis::{extract, FeatureView};
//! use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), cati_analysis::ExtractError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let opts = CodegenOptions { compiler: Compiler::Gcc, opt: OptLevel::O0 };
//! let built = cati_synbin::build_app(&AppProfile::new("demo"), opts, 0.3, &mut rng).remove(0);
//! let extraction = extract(&built.binary, FeatureView::WithSymbols)?;
//! assert!(extraction.vars.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod assemble;
pub mod callgraph;
pub mod digest;
pub mod error;
pub mod extract;
pub mod fields;
pub mod recovery;
pub mod stats;

pub use assemble::{ContextAssembler, ContextMode, Slot, TargetVar, WindowPlan};
pub use callgraph::{CallGraph, CallSite};
pub use digest::{digest_binary, digest_bytes, Digest, Fnv128};
pub use error::{
    CatiError, Coverage, Diagnostic, Diagnostics, ExtractError, PipelineStage, MAX_DIAGNOSTICS,
};
pub use extract::{
    detect_frame_base, extract, extract_lenient, extract_lenient_mode,
    extract_lenient_mode_observed, extract_lenient_observed, extract_mode, extract_mode_observed,
    extract_observed, split_functions, symbol_byte_ranges, Extraction, FeatureView,
    LenientExtraction, VarKey, Variable, Vuc, WindowStats, VUC_LEN, WINDOW,
};
pub use fields::{
    recover_fields_in, recover_struct_fields, score_fields, FieldList, FieldMember, FieldQuery,
    FieldScore,
};
pub use recovery::{recovery_stats, RecoveryStats};
pub use stats::{clustering_stats, orphan_stats, ClusterStats, ClusteringReport, OrphanStats};
