//! Pipeline-wide error taxonomy, diagnostics and coverage reporting.
//!
//! Every stage of the pipeline can fail on hostile input: the text
//! section may not decode, the debug section may be truncated or lie
//! about its own type graph, and a symbol table may point at garbage.
//! [`CatiError`] names each failure with the stage it occurred in;
//! [`Diagnostics`] collects non-fatal findings when the pipeline runs
//! in lenient mode; [`Coverage`] quantifies how much of the binary the
//! lenient path actually processed, so a partial result is never
//! mistaken for a complete one.

use cati_asm::codec::DecodeError;
use cati_dwarf::DwarfError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pipeline stage an error or diagnostic originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineStage {
    /// Linear-sweep disassembly of the text section.
    Decode,
    /// Parsing of the debug-information section.
    DebugParse,
    /// Function splitting and symbol-table interpretation.
    Split,
    /// Variable recovery and VUC window cutting.
    Extract,
    /// Embedding / classification / voting.
    Infer,
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PipelineStage::Decode => "decode",
            PipelineStage::DebugParse => "debug-parse",
            PipelineStage::Split => "split",
            PipelineStage::Extract => "extract",
            PipelineStage::Infer => "infer",
        };
        f.write_str(s)
    }
}

/// A typed, stage-attributed pipeline error.
///
/// This is the strict-mode contract: hostile input produces exactly
/// one of these instead of a panic. The lenient path downgrades most
/// of them to [`Diagnostic`]s and keeps going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatiError {
    /// The binary carries no debug section but labeling was requested.
    NoDebugInfo,
    /// The debug section is corrupt.
    Dwarf(DwarfError),
    /// The text section does not decode.
    Decode(DecodeError),
}

/// Pre-taxonomy name for the extraction error, kept for callers that
/// matched on the old type.
pub type ExtractError = CatiError;

impl CatiError {
    /// The stage this error belongs to.
    pub fn stage(&self) -> PipelineStage {
        match self {
            CatiError::NoDebugInfo | CatiError::Dwarf(_) => PipelineStage::DebugParse,
            CatiError::Decode(_) => PipelineStage::Decode,
        }
    }
}

impl fmt::Display for CatiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatiError::NoDebugInfo => write!(f, "binary has no debug information"),
            CatiError::Dwarf(e) => write!(f, "bad debug section: {e}"),
            CatiError::Decode(e) => write!(f, "undecodable text section: {e}"),
        }
    }
}

impl std::error::Error for CatiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatiError::NoDebugInfo => None,
            CatiError::Dwarf(e) => Some(e),
            CatiError::Decode(e) => Some(e),
        }
    }
}

impl From<DwarfError> for CatiError {
    fn from(e: DwarfError) -> Self {
        CatiError::Dwarf(e)
    }
}

impl From<DecodeError> for CatiError {
    fn from(e: DecodeError) -> Self {
        CatiError::Decode(e)
    }
}

/// One non-fatal finding from a lenient pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stage the finding originated in.
    pub stage: PipelineStage,
    /// Function index the finding is attributed to, when known.
    pub func: Option<u32>,
    /// Virtual address the finding is attributed to, when known.
    pub addr: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.stage)?;
        if let Some(func) = self.func {
            write!(f, " fn#{func}")?;
        }
        if let Some(addr) = self.addr {
            write!(f, " @{addr:#x}")?;
        }
        write!(f, " {}", self.message)
    }
}

/// Hard cap on retained diagnostics, so a pathological input cannot
/// turn the sink into an allocation amplifier.
pub const MAX_DIAGNOSTICS: usize = 1024;

/// Bounded sink for [`Diagnostic`]s.
///
/// Keeps the first [`MAX_DIAGNOSTICS`] findings and counts the rest,
/// preserving insertion order — deterministic for a deterministic
/// producer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Retained findings, in emission order.
    pub entries: Vec<Diagnostic>,
    /// Findings dropped after the cap was hit.
    pub dropped: u64,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records a finding (or counts it, past the cap).
    pub fn push(&mut self, diag: Diagnostic) {
        if self.entries.len() < MAX_DIAGNOSTICS {
            self.entries.push(diag);
        } else {
            self.dropped += 1;
        }
    }

    /// Convenience: record a finding built from parts.
    pub fn report(
        &mut self,
        stage: PipelineStage,
        func: Option<u32>,
        addr: Option<u64>,
        message: impl Into<String>,
    ) {
        self.push(Diagnostic {
            stage,
            func,
            addr,
            message: message.into(),
        });
    }

    /// Total findings observed, including dropped ones.
    pub fn total(&self) -> u64 {
        self.entries.len() as u64 + self.dropped
    }

    /// Whether no findings were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.dropped == 0
    }
}

/// How much of a binary a lenient run actually covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// Functions the splitter identified (symbol ranges or ret-delimited).
    pub functions_total: u64,
    /// Functions skipped because their bytes did not decode.
    pub functions_skipped: u64,
    /// Text-section size in bytes.
    pub bytes_total: u64,
    /// Text bytes that produced no instruction (decode gaps, skipped
    /// function bodies).
    pub bytes_skipped: u64,
    /// Whether the binary carried a debug section at all.
    pub debug_present: bool,
    /// Whether that debug section parsed and validated.
    pub debug_ok: bool,
    /// Variables recovered.
    pub vars: u64,
    /// VUC windows cut.
    pub vucs: u64,
}

impl Coverage {
    /// Whether nothing was skipped anywhere: every function decoded
    /// and, if debug info was present, it parsed.
    pub fn is_complete(&self) -> bool {
        self.functions_skipped == 0
            && self.bytes_skipped == 0
            && (!self.debug_present || self.debug_ok)
    }

    /// Fraction of identified functions that survived, in `[0, 1]`;
    /// `1.0` when the splitter found none.
    pub fn function_coverage(&self) -> f64 {
        if self.functions_total == 0 {
            1.0
        } else {
            1.0 - self.functions_skipped as f64 / self.functions_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_match_pre_taxonomy_wording() {
        assert_eq!(
            CatiError::NoDebugInfo.to_string(),
            "binary has no debug information"
        );
        assert_eq!(
            CatiError::Dwarf(DwarfError::BadMagic).to_string(),
            "bad debug section: debug section has wrong magic number"
        );
        assert_eq!(
            CatiError::Decode(DecodeError::Truncated { at: 3 }).to_string(),
            "undecodable text section: instruction truncated at offset 3"
        );
    }

    #[test]
    fn errors_carry_their_stage() {
        assert_eq!(CatiError::NoDebugInfo.stage(), PipelineStage::DebugParse);
        assert_eq!(
            CatiError::Dwarf(DwarfError::Truncated).stage(),
            PipelineStage::DebugParse
        );
        assert_eq!(
            CatiError::Decode(DecodeError::BadOperand { at: 0 }).stage(),
            PipelineStage::Decode
        );
    }

    #[test]
    fn diagnostics_cap_counts_overflow() {
        let mut sink = Diagnostics::new();
        for i in 0..(MAX_DIAGNOSTICS + 10) {
            sink.report(PipelineStage::Decode, None, Some(i as u64), "gap");
        }
        assert_eq!(sink.entries.len(), MAX_DIAGNOSTICS);
        assert_eq!(sink.dropped, 10);
        assert_eq!(sink.total(), MAX_DIAGNOSTICS as u64 + 10);
        assert!(!sink.is_empty());
    }

    #[test]
    fn diagnostic_display_is_attributed() {
        let d = Diagnostic {
            stage: PipelineStage::Extract,
            func: Some(2),
            addr: Some(0x40_1000),
            message: "body skipped".into(),
        };
        assert_eq!(d.to_string(), "[extract] fn#2 @0x401000 body skipped");
    }

    #[test]
    fn coverage_completeness() {
        let mut cov = Coverage {
            functions_total: 4,
            debug_present: true,
            debug_ok: true,
            ..Coverage::default()
        };
        assert!(cov.is_complete());
        assert_eq!(cov.function_coverage(), 1.0);
        cov.functions_skipped = 1;
        assert!(!cov.is_complete());
        assert_eq!(cov.function_coverage(), 0.75);
        cov.functions_skipped = 0;
        cov.debug_ok = false;
        assert!(!cov.is_complete());
    }
}
