//! Static call graph over split function bodies.
//!
//! Built once per binary by the interprocedural context assembler:
//! every `call` whose target address is the entry of another split
//! function becomes an edge. Indirect calls and externs (PLT
//! pseudo-symbols outside the decoded bodies) resolve to nothing and
//! are simply absent from the graph — the assembler degrades to blank
//! padding exactly as the function-local mode would.
//!
//! Function indices match the body slice handed to
//! [`CallGraph::build`], which is the same indexing
//! [`crate::extract::VarKey::func`] uses: lenient extraction keeps a
//! `None` slot for every skipped function, so edges into or out of a
//! corrupt function disappear while every surviving index keeps its
//! meaning.

use cati_asm::codec::Located;
use cati_asm::mnemonic::Kind;
use std::collections::HashMap;

/// One resolved `call` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Index of the calling function.
    pub caller: u32,
    /// Instruction position of the `call` inside the caller's body.
    pub pos: u32,
    /// Index of the called function.
    pub callee: u32,
}

/// Call edges of one decoded binary, indexed both ways.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All resolved sites, sorted by `(caller, pos)`.
    sites: Vec<CallSite>,
    /// `callee → indices into `sites``, each list sorted by
    /// `(caller, pos)` — the canonical-caller order.
    callers: HashMap<u32, Vec<u32>>,
}

impl CallGraph {
    /// Builds the graph over split bodies (`None` = function skipped
    /// by lenient extraction; it contributes no edges in either
    /// direction but keeps its index).
    pub fn build(bodies: &[Option<&[Located]>]) -> CallGraph {
        let mut entry_of: HashMap<u64, u32> = HashMap::new();
        for (idx, body) in bodies.iter().enumerate() {
            if let Some(first) = body.and_then(|b| b.first()) {
                // First entry wins on (degenerate) duplicate entry
                // addresses so resolution is deterministic.
                entry_of.entry(first.addr).or_insert(idx as u32);
            }
        }
        let mut sites = Vec::new();
        for (caller, body) in bodies.iter().enumerate() {
            let Some(body) = *body else { continue };
            for (pos, located) in body.iter().enumerate() {
                if !matches!(located.insn.mnemonic.kind(), Kind::Call) {
                    continue;
                }
                let Some(target) = located.insn.target() else {
                    continue;
                };
                if let Some(&callee) = entry_of.get(&target) {
                    sites.push(CallSite {
                        caller: caller as u32,
                        pos: pos as u32,
                        callee,
                    });
                }
            }
        }
        // Enumeration order is already (caller, pos)-sorted.
        let mut callers: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, site) in sites.iter().enumerate() {
            callers.entry(site.callee).or_default().push(i as u32);
        }
        CallGraph { sites, callers }
    }

    /// All resolved call sites, sorted by `(caller, pos)`.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Call sites targeting `callee`, in `(caller, pos)` order — the
    /// first entry is the canonical caller used for splicing.
    pub fn callers_of(&self, callee: u32) -> impl Iterator<Item = CallSite> + '_ {
        self.callers
            .get(&callee)
            .into_iter()
            .flatten()
            .map(|&i| self.sites[i as usize])
    }

    /// The callee of the call instruction at `(caller, pos)`, if that
    /// position is a resolved call site.
    pub fn callee_at(&self, caller: u32, pos: usize) -> Option<u32> {
        let i = self
            .sites
            .partition_point(|s| (s.caller, s.pos) < (caller, pos as u32));
        self.sites
            .get(i)
            .filter(|s| s.caller == caller && s.pos == pos as u32)
            .map(|s| s.callee)
    }

    /// Whether `func` is the target of at least one resolved call.
    pub fn is_called(&self, func: u32) -> bool {
        self.callers.get(&func).is_some_and(|v| !v.is_empty())
    }

    /// Number of resolved edges.
    pub fn edge_count(&self) -> usize {
        self.sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::split_functions;
    use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_of(seed: u64) -> (CallGraph, usize) {
        let profile = AppProfile::new("cg");
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        let bin = build_app(&profile, opts, 0.5, &mut rng).remove(0).binary;
        let insns = bin.disassemble().unwrap();
        let functions = split_functions(&insns, &bin);
        let bodies: Vec<Option<&[Located]>> =
            functions.iter().map(|&(s, e)| Some(&insns[s..e])).collect();
        (CallGraph::build(&bodies), bodies.len())
    }

    #[test]
    fn some_binary_has_local_call_edges() {
        let found = (0..20).any(|seed| graph_of(seed).0.edge_count() > 0);
        assert!(found, "no local call edges in 20 synthetic binaries");
    }

    #[test]
    fn edges_are_sorted_and_in_range() {
        for seed in 0..10 {
            let (g, n) = graph_of(seed);
            for w in g.sites().windows(2) {
                assert!((w[0].caller, w[0].pos) < (w[1].caller, w[1].pos));
            }
            for s in g.sites() {
                assert!((s.caller as usize) < n);
                assert!((s.callee as usize) < n);
                assert_eq!(g.callee_at(s.caller, s.pos as usize), Some(s.callee));
                assert!(g.is_called(s.callee));
                assert!(g
                    .callers_of(s.callee)
                    .any(|c| c.caller == s.caller && c.pos == s.pos));
            }
        }
    }

    #[test]
    fn skipped_bodies_contribute_no_edges() {
        for seed in 0..20 {
            let (full, _) = graph_of(seed);
            let Some(&site) = full.sites().first() else {
                continue;
            };
            let profile = AppProfile::new("cg");
            let mut rng = StdRng::seed_from_u64(seed);
            let opts = CodegenOptions {
                compiler: Compiler::Gcc,
                opt: OptLevel::O0,
            };
            let bin = build_app(&profile, opts, 0.5, &mut rng).remove(0).binary;
            let insns = bin.disassemble().unwrap();
            let functions = split_functions(&insns, &bin);
            let mut bodies: Vec<Option<&[Located]>> =
                functions.iter().map(|&(s, e)| Some(&insns[s..e])).collect();
            bodies[site.callee as usize] = None;
            let g = CallGraph::build(&bodies);
            assert!(!g.is_called(site.callee));
            assert!(g
                .sites()
                .iter()
                .all(|s| s.callee != site.callee && s.caller != site.callee));
            return;
        }
        panic!("no call edge found to knock out");
    }
}
