//! Corpus statistics: orphan variables, uncertain samples, and the
//! same-type variable clustering phenomenon (paper §II-B, Tables I
//! and V).

use crate::extract::{Extraction, WINDOW};
use cati_dwarf::TypeClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Table I row set: orphan-variable and uncertain-sample counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrphanStats {
    /// Total labeled variables.
    pub variables: u64,
    /// Total VUCs.
    pub vucs: u64,
    /// Variables with exactly 1 VUC.
    pub vars_1_vuc: u64,
    /// Variables with exactly 1 VUC whose feature multiset collides
    /// with a different-class variable.
    pub uncertain_1: u64,
    /// Variables with exactly 2 VUCs.
    pub vars_2_vuc: u64,
    /// As `uncertain_1`, for 2-VUC variables.
    pub uncertain_2: u64,
}

impl OrphanStats {
    /// Fraction of variables that are orphans (1 or 2 VUCs).
    pub fn orphan_rate(&self) -> f64 {
        if self.variables == 0 {
            return 0.0;
        }
        (self.vars_1_vuc + self.vars_2_vuc) as f64 / self.variables as f64
    }

    /// Fraction of orphans that are uncertain samples.
    pub fn uncertain_rate(&self) -> f64 {
        let orphans = self.vars_1_vuc + self.vars_2_vuc;
        if orphans == 0 {
            return 0.0;
        }
        (self.uncertain_1 + self.uncertain_2) as f64 / orphans as f64
    }
}

/// The *target instruction signature* of a variable: the sorted
/// multiset of its VUCs' center instructions after generalization.
/// Two variables with identical signatures but different classes are
/// *uncertain samples* — indistinguishable to any context-free method
/// (paper Fig. 1).
fn target_signature(ex: &Extraction, var_idx: usize) -> Vec<String> {
    let mut sig: Vec<String> = ex.vars[var_idx]
        .vucs
        .iter()
        .map(|&v| ex.vucs[v as usize].insns[WINDOW].to_string())
        .collect();
    sig.sort_unstable();
    sig
}

/// Computes Table I statistics over a set of extractions.
pub fn orphan_stats<'a>(extractions: impl IntoIterator<Item = &'a Extraction>) -> OrphanStats {
    let extractions: Vec<&Extraction> = extractions.into_iter().collect();
    let mut stats = OrphanStats::default();

    // signature -> set of classes seen with it, per VUC-count bucket.
    let mut sig_classes: HashMap<(usize, Vec<String>), Vec<TypeClass>> = HashMap::new();
    let mut orphan_entries: Vec<(usize, Vec<String>, TypeClass)> = Vec::new();

    for ex in &extractions {
        stats.vucs += ex.vucs.len() as u64;
        for (i, var) in ex.labeled_vars() {
            stats.variables += 1;
            let n = var.vucs.len();
            if n == 1 || n == 2 {
                if n == 1 {
                    stats.vars_1_vuc += 1;
                } else {
                    stats.vars_2_vuc += 1;
                }
                let sig = target_signature(ex, i);
                let class = var.class.expect("labeled");
                sig_classes.entry((n, sig.clone())).or_default().push(class);
                orphan_entries.push((n, sig, class));
            }
        }
    }

    for (n, sig, class) in orphan_entries {
        let classes = &sig_classes[&(n, sig)];
        let uncertain = classes.iter().any(|c| *c != class);
        if uncertain {
            if n == 1 {
                stats.uncertain_1 += 1;
            } else {
                stats.uncertain_2 += 1;
            }
        }
    }
    stats
}

/// Per-class clustering statistics (paper Table V columns 7–9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Number of VUCs of this class observed.
    pub vucs: u64,
    /// Total variable instructions (labeled target instructions) seen
    /// in the context windows.
    pub total_var_insns: u64,
    /// Of those, how many operate a variable of the *same* class as
    /// the target.
    pub same_class_insns: u64,
}

impl ClusterStats {
    /// `cnt-same`: average same-class variable instructions per VUC.
    pub fn cnt_same(&self) -> f64 {
        if self.vucs == 0 {
            return 0.0;
        }
        self.same_class_insns as f64 / self.vucs as f64
    }

    /// `cnt-all`: average variable instructions per VUC.
    pub fn cnt_all(&self) -> f64 {
        if self.vucs == 0 {
            return 0.0;
        }
        self.total_var_insns as f64 / self.vucs as f64
    }

    /// `c-rate`: the clustering ratio.
    pub fn c_rate(&self) -> f64 {
        if self.total_var_insns == 0 {
            return 0.0;
        }
        self.same_class_insns as f64 / self.total_var_insns as f64
    }
}

/// Clustering statistics per type class, plus the overall row.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusteringReport {
    /// Per-class entries indexed by [`TypeClass::index`].
    pub per_class: Vec<ClusterStats>,
    /// Aggregate over all classes.
    pub overall: ClusterStats,
}

/// Measures the same-type clustering phenomenon over extractions.
pub fn clustering_stats<'a>(
    extractions: impl IntoIterator<Item = &'a Extraction>,
) -> ClusteringReport {
    let mut report = ClusteringReport {
        per_class: vec![ClusterStats::default(); TypeClass::ALL.len()],
        overall: ClusterStats::default(),
    };
    for ex in extractions {
        for vuc in &ex.vucs {
            let Some(target_class) = vuc.class(&ex.vars) else {
                continue;
            };
            let entry = &mut report.per_class[target_class.index()];
            entry.vucs += 1;
            report.overall.vucs += 1;
            for (k, ctx) in vuc.context_classes.iter().enumerate() {
                if k == WINDOW {
                    continue; // the target itself does not count
                }
                if let Some(c) = ctx {
                    entry.total_var_insns += 1;
                    report.overall.total_var_insns += 1;
                    if *c == target_class {
                        entry.same_class_insns += 1;
                        report.overall.same_class_insns += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, FeatureView};
    use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn extractions(n_apps: usize, seed: u64) -> Vec<Extraction> {
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        let mut out = Vec::new();
        for i in 0..n_apps {
            let profile = AppProfile::new(format!("stat{i}"));
            for built in build_app(&profile, opts, 0.5, &mut rng) {
                out.push(extract(&built.binary, FeatureView::WithSymbols).unwrap());
            }
        }
        out
    }

    #[test]
    fn orphans_exist_and_are_mostly_uncertain() {
        let exs = extractions(6, 21);
        let stats = orphan_stats(&exs);
        assert!(
            stats.variables > 100,
            "need a real sample, got {}",
            stats.variables
        );
        let orphan_rate = stats.orphan_rate();
        assert!(
            orphan_rate > 0.10 && orphan_rate < 0.80,
            "orphan rate {orphan_rate:.2} implausible"
        );
        // Paper: uncertain samples are >97% of orphans. The collision
        // rate grows with corpus size (their corpus holds 3.9M
        // variables); at this test's tiny scale we only assert the
        // phenomenon clearly exists.
        assert!(
            stats.uncertain_rate() > 0.25,
            "uncertain rate {:.2} too low",
            stats.uncertain_rate()
        );
    }

    #[test]
    fn clustering_ratio_is_substantial() {
        let exs = extractions(6, 22);
        let report = clustering_stats(&exs);
        assert!(report.overall.vucs > 500);
        let rate = report.overall.c_rate();
        assert!(
            rate > 0.25 && rate < 0.95,
            "overall clustering rate {rate:.2} out of plausible band"
        );
        assert!(report.overall.cnt_all() > 1.0);
        assert!(report.overall.cnt_same() <= report.overall.cnt_all());
    }

    #[test]
    fn struct_variables_cluster_strongly() {
        let exs = extractions(8, 23);
        let report = clustering_stats(&exs);
        let s = &report.per_class[TypeClass::Struct.index()];
        if s.vucs > 50 {
            assert!(s.c_rate() > 0.3, "struct c-rate {:.2}", s.c_rate());
        }
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let stats = orphan_stats(std::iter::empty());
        assert_eq!(stats.variables, 0);
        assert_eq!(stats.orphan_rate(), 0.0);
        let report = clustering_stats(std::iter::empty());
        assert_eq!(report.overall.c_rate(), 0.0);
    }
}
