//! Variable-recovery evaluation.
//!
//! The paper assumes variable *location* is a solved problem (§IV-A:
//! DIVINE/DEBIN reach ~90%, and evaluation assumes locations are
//! given). Our substrate lets us measure the same quantity directly:
//! compare the variables recovered from a stripped binary against the
//! debug-information oracle of its unstripped twin.

use crate::extract::{extract, ExtractError, Extraction, FeatureView, VarKey};
use cati_asm::binary::Binary;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Outcome of comparing stripped-mode recovery against the oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Oracle variables (classifiable classes only).
    pub oracle_vars: u64,
    /// Oracle variables whose exact slot was recovered.
    pub recovered: u64,
    /// Variables recovered from the stripped binary in total
    /// (including unclassifiable slots the oracle excludes).
    pub stripped_vars: u64,
}

impl RecoveryStats {
    /// Recall of oracle variables — the figure comparable to the
    /// paper's "~90% variable recovery" citation.
    pub fn recall(&self) -> f64 {
        if self.oracle_vars == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.oracle_vars as f64
    }

    /// How many recovered slots have an oracle counterpart.
    pub fn precision(&self) -> f64 {
        if self.stripped_vars == 0 {
            return 0.0;
        }
        // Every matched oracle var consumes one stripped slot.
        self.recovered.min(self.stripped_vars) as f64 / self.stripped_vars as f64
    }
}

/// Compares recovery on the stripped view of `binary` against its own
/// debug-information oracle.
///
/// # Errors
///
/// Fails if the binary lacks debug info or does not decode.
pub fn recovery_stats(binary: &Binary) -> Result<RecoveryStats, ExtractError> {
    if binary.debug.is_none() {
        return Err(ExtractError::NoDebugInfo);
    }
    let oracle = extract(binary, FeatureView::WithSymbols)?;
    let stripped_bin = binary.strip();
    let stripped = extract(&stripped_bin, FeatureView::Stripped)?;
    Ok(compare(&oracle, &stripped))
}

/// Compares two extractions of the same binary.
pub fn compare(oracle: &Extraction, stripped: &Extraction) -> RecoveryStats {
    let keys: HashSet<VarKey> = stripped.vars.iter().map(|v| v.key).collect();
    let oracle_vars = oracle.vars.len() as u64;
    let recovered = oracle.vars.iter().filter(|v| keys.contains(&v.key)).count() as u64;
    RecoveryStats {
        oracle_vars,
        recovered,
        stripped_vars: stripped.vars.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats_for(opt: OptLevel, seed: u64) -> RecoveryStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt,
        };
        let built = build_app(&AppProfile::new("rec"), opts, 0.5, &mut rng).remove(0);
        recovery_stats(&built.binary).unwrap()
    }

    #[test]
    fn recovery_recall_is_high_at_o0() {
        // At -O0 every access is a plain frame reference; recall
        // should reach the ~90% band the paper cites.
        let mut agg = RecoveryStats::default();
        for seed in 0..6 {
            let s = stats_for(OptLevel::O0, seed);
            agg.oracle_vars += s.oracle_vars;
            agg.recovered += s.recovered;
            agg.stripped_vars += s.stripped_vars;
        }
        assert!(agg.oracle_vars > 100);
        assert!(agg.recall() > 0.8, "recall {:.3}", agg.recall());
    }

    #[test]
    fn recovery_works_at_higher_opt_levels() {
        let s = stats_for(OptLevel::O2, 17);
        assert!(s.oracle_vars > 0);
        assert!(s.recall() > 0.5, "O2 recall {:.3}", s.recall());
    }

    #[test]
    fn missing_debug_info_is_an_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        let built = build_app(&AppProfile::new("err"), opts, 0.3, &mut rng).remove(0);
        let stripped = built.binary.strip();
        assert!(matches!(
            recovery_stats(&stripped),
            Err(ExtractError::NoDebugInfo)
        ));
    }

    #[test]
    fn metrics_handle_empty_inputs() {
        let s = RecoveryStats::default();
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.precision(), 0.0);
    }
}
