//! Pluggable VUC window assembly.
//!
//! The paper's extraction cuts every 21-slot window inside one
//! function and BLANK-pads past the edges (§II-A). "Beyond the Edge
//! of Function" shows those padded slots discard the strongest type
//! evidence there is: argument and return flows across `call`/`ret`
//! sites. This module factors the window-cutting decision out of
//! [`crate::extract`] into a [`ContextAssembler`] with two modes:
//!
//! - [`ContextMode::FunctionLocal`] — the paper baseline. The plan it
//!   produces is position-for-position identical to the historical
//!   inline loop, so extraction (and everything trained on it) stays
//!   bit-identical.
//! - [`ContextMode::Interprocedural`] — consults a [`CallGraph`] and
//!   replaces edge padding with real context when the target variable
//!   provably flows across the boundary:
//!   1. *parameter splice*: the window has leading blanks and the
//!      prologue homes an argument register into the variable's slot
//!      → splice the canonical caller's instructions up to and
//!      including its `call`, right-aligned against the entry;
//!   2. *argument splice*: the window has trailing blanks and the
//!      variable is loaded into a System V integer argument register
//!      before a resolved `call` later in the body → splice the
//!      callee's prologue;
//!   3. *return splice*: the window has trailing blanks, the body
//!      ends in `ret`, and the variable is loaded into `%rax` on the
//!      way out → splice the canonical caller's continuation after
//!      its call site.
//!
//! The canonical caller is the lowest `(function, position)` call
//! site — a deterministic choice, independent of hash-map iteration.
//! Slots the rules cannot fill stay BLANK, so a corrupt callee (a
//! `None` body under lenient extraction) degrades a splice back to
//! exactly the padding the baseline would have emitted.

use crate::callgraph::CallGraph;
use cati_asm::codec::Located;
use cati_asm::insn::{Insn, MemAccess, Operand};
use cati_asm::mnemonic::Mnemonic;
use cati_asm::reg::Gpr;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::extract::{VUC_LEN, WINDOW};

/// How far into a body the prologue scan looks for parameter homing
/// (push/mov/sub plus up to six integer homes, with slack).
const PROLOGUE_SCAN: usize = 24;

/// System V AMD64 integer argument registers, in call order
/// (`%rdi %rsi %rdx %rcx %r8 %r9` by `Gpr::num`).
pub const INT_ARG_REG_NUMS: [u8; 6] = [7, 6, 2, 1, 8, 9];

/// `Gpr::num` of the integer return register family (`%rax`).
pub const RET_REG_NUM: u8 = 0;

/// Which context a VUC window draws from at the function edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContextMode {
    /// Paper baseline: windows stop at the function boundary and the
    /// overhang is BLANK padding. Bit-identical to the pre-assembler
    /// extraction.
    #[default]
    FunctionLocal,
    /// Call-graph-assisted windows: argument/return flows across
    /// `call`/`ret` sites splice callee or caller instructions into
    /// the padding.
    Interprocedural,
}

impl ContextMode {
    /// Both modes, baseline first — the ablation axis order.
    pub const ALL: [ContextMode; 2] = [ContextMode::FunctionLocal, ContextMode::Interprocedural];

    /// Stable short name: `function` / `interproc`. Used by the CLI
    /// flag, cache keys and manifests.
    pub fn name(self) -> &'static str {
        match self {
            ContextMode::FunctionLocal => "function",
            ContextMode::Interprocedural => "interproc",
        }
    }

    /// Parses the CLI spelling (a few aliases accepted).
    pub fn parse(s: &str) -> Option<ContextMode> {
        match s {
            "function" | "local" | "function-local" => Some(ContextMode::FunctionLocal),
            "interproc" | "interprocedural" => Some(ContextMode::Interprocedural),
            _ => None,
        }
    }
}

impl std::fmt::Display for ContextMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Manual serde: the mode serializes as its short name, and a missing
// field deserializes as the baseline. Configs and models written
// before the mode existed therefore load unchanged, and a
// FunctionLocal config can keep serializing without the field — the
// byte stability the golden-fixture tests pin.
impl Serialize for ContextMode {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Deserialize for ContextMode {
    fn from_value(v: &Value) -> Result<ContextMode, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("context mode string", v))?;
        ContextMode::parse(s).ok_or_else(|| DeError::unknown_variant(s, "ContextMode"))
    }

    fn missing() -> Option<ContextMode> {
        Some(ContextMode::FunctionLocal)
    }
}

/// Where one window slot draws its instruction from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// No context available: BLANK padding.
    Blank,
    /// Instruction at this position of the *target* function's body.
    Local(usize),
    /// Instruction spliced from another function's body.
    Spliced {
        /// Function index the instruction comes from.
        func: u32,
        /// Position inside that function's body.
        pos: usize,
    },
}

/// A fully decided 21-slot window: what goes where, before
/// generalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// Exactly [`VUC_LEN`] slot decisions; index [`WINDOW`] is always
    /// `Slot::Local(target)`.
    pub slots: Vec<Slot>,
}

impl WindowPlan {
    /// Number of slots left BLANK.
    pub fn padded(&self) -> usize {
        self.slots.iter().filter(|s| **s == Slot::Blank).count()
    }

    /// Number of slots filled from another function.
    pub fn spliced(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Spliced { .. }))
            .count()
    }
}

/// Everything the assembler needs to know about the target variable.
#[derive(Debug, Clone, Copy)]
pub struct TargetVar<'a> {
    /// Index of the variable in the caller's resolution table.
    pub vid: u32,
    /// Canonical frame-slot base offset.
    pub offset: i32,
    /// The function's frame base register.
    pub frame_base: Gpr,
    /// Per-instruction variable resolution for the owning function
    /// (`insn_var[p] == Some(vid)` ⇔ instruction `p` operates the
    /// target variable).
    pub insn_var: &'a [Option<u32>],
}

/// Per-binary window planner. Construction is cheap for the baseline
/// and builds the call graph once for the interprocedural mode.
pub struct ContextAssembler<'a> {
    mode: ContextMode,
    bodies: &'a [Option<&'a [Located]>],
    graph: Option<CallGraph>,
}

impl<'a> ContextAssembler<'a> {
    /// Creates the assembler over split bodies (`None` slots are
    /// functions the lenient path skipped).
    pub fn new(mode: ContextMode, bodies: &'a [Option<&'a [Located]>]) -> ContextAssembler<'a> {
        let graph = match mode {
            ContextMode::FunctionLocal => None,
            ContextMode::Interprocedural => Some(CallGraph::build(bodies)),
        };
        ContextAssembler {
            mode,
            bodies,
            graph,
        }
    }

    /// The mode this assembler runs in.
    pub fn mode(&self) -> ContextMode {
        self.mode
    }

    /// The call graph, when the mode builds one.
    pub fn graph(&self) -> Option<&CallGraph> {
        self.graph.as_ref()
    }

    /// Resolves a planned slot to its instruction, if it has one.
    pub fn instruction(&self, func: u32, slot: Slot) -> Option<&'a Located> {
        match slot {
            Slot::Blank => None,
            Slot::Local(j) => self.bodies[func as usize].and_then(|b| b.get(j)),
            Slot::Spliced { func, pos } => self.bodies[func as usize].and_then(|b| b.get(pos)),
        }
    }

    /// Plans the 21-slot window around target instruction `i` of
    /// function `func`.
    pub fn plan(&self, func: u32, i: usize, var: &TargetVar<'_>) -> WindowPlan {
        let body = self.bodies[func as usize].unwrap_or(&[]);
        // Baseline layout first — identical to the historical loop:
        // blank outside [0, len), local index inside.
        let mut slots = Vec::with_capacity(VUC_LEN);
        for j in i as i64 - WINDOW as i64..=i as i64 + WINDOW as i64 {
            if j < 0 || j as usize >= body.len() {
                slots.push(Slot::Blank);
            } else {
                slots.push(Slot::Local(j as usize));
            }
        }
        let mut plan = WindowPlan { slots };
        if self.mode == ContextMode::Interprocedural {
            self.splice(func, body, i, var, &mut plan);
        }
        plan
    }

    /// Applies the three interprocedural splice rules in place.
    fn splice(
        &self,
        func: u32,
        body: &[Located],
        i: usize,
        var: &TargetVar<'_>,
        plan: &mut WindowPlan,
    ) {
        let Some(graph) = self.graph.as_ref() else {
            return;
        };
        let leading = WINDOW.saturating_sub(i);
        let trailing = (i + WINDOW + 1).saturating_sub(body.len());

        // Rule 1: parameter splice. The prologue homes an argument
        // register into the variable's slot, so the bytes "before"
        // the entry are really the canonical caller's call sequence.
        if leading > 0 && is_homed_param(body, var) {
            if let Some(site) = graph.callers_of(func).next() {
                if let Some(caller_body) = self.bodies[site.caller as usize] {
                    for t in 0..leading {
                        let Some(pos) = (site.pos as usize).checked_sub(t) else {
                            break;
                        };
                        if caller_body.get(pos).is_none() {
                            break;
                        }
                        plan.slots[leading - 1 - t] = Slot::Spliced {
                            func: site.caller,
                            pos,
                        };
                    }
                }
            }
        }

        if trailing == 0 {
            return;
        }

        // Rule 2: argument splice. The variable is loaded into an
        // integer argument register before a resolved call later in
        // the body — what runs after the edge is the callee prologue.
        let arg_call = (i + 1..body.len()).find_map(|c| {
            let callee = graph.callee_at(func, c)?;
            let flows = (i..c).any(|p| {
                var.insn_var[p] == Some(var.vid) && loads_into(&body[p].insn, &INT_ARG_REG_NUMS)
            });
            (flows && self.bodies[callee as usize].is_some()).then_some(callee)
        });
        if let Some(callee) = arg_call {
            let callee_body = self.bodies[callee as usize].unwrap_or(&[]);
            for t in 0..trailing.min(callee_body.len()) {
                plan.slots[VUC_LEN - trailing + t] = Slot::Spliced {
                    func: callee,
                    pos: t,
                };
            }
            return;
        }

        // Rule 3: return splice. The body ends in `ret` and the
        // variable reaches `%rax` on the way out — what runs after
        // the edge is the canonical caller's continuation.
        let ends_in_ret = body.last().map(|l| l.insn.mnemonic) == Some(Mnemonic::Ret);
        let flows_to_ret = ends_in_ret
            && (i..body.len()).any(|p| {
                var.insn_var[p] == Some(var.vid) && loads_into(&body[p].insn, &[RET_REG_NUM])
            });
        if flows_to_ret {
            if let Some(site) = graph.callers_of(func).next() {
                if let Some(caller_body) = self.bodies[site.caller as usize] {
                    for t in 0..trailing {
                        let pos = site.pos as usize + 1 + t;
                        if caller_body.get(pos).is_none() {
                            break;
                        }
                        plan.slots[VUC_LEN - trailing + t] = Slot::Spliced {
                            func: site.caller,
                            pos,
                        };
                    }
                }
            }
        }
    }
}

/// Whether the prologue stores an integer argument register into the
/// variable's frame slot — the compiler idiom for homing a parameter.
fn is_homed_param(body: &[Located], var: &TargetVar<'_>) -> bool {
    body.iter().take(PROLOGUE_SCAN).any(|l| {
        let Some((mem, access)) = l.insn.mem_operand() else {
            return false;
        };
        access == MemAccess::Write
            && mem.base.map(|b| b.num()) == Some(var.frame_base.num())
            && mem.disp == var.offset
            && stored_reg(&l.insn)
                .map(|r| INT_ARG_REG_NUMS.contains(&r.num()))
                .unwrap_or(false)
    })
}

/// The register a `mov reg, mem` stores (AT&T order: source first).
fn stored_reg(insn: &Insn) -> Option<Gpr> {
    match insn.operands.first()? {
        Operand::Reg(r) => Some(*r),
        _ => None,
    }
}

/// Whether `insn` reads its memory operand into a register whose
/// `Gpr::num` is in `regs` — the shape of an argument or return-value
/// load (`mov`/`movsx`/`movzx` from the frame slot).
fn loads_into(insn: &Insn, regs: &[u8]) -> bool {
    let Some((_, access)) = insn.mem_operand() else {
        return false;
    };
    if access != MemAccess::Read {
        return false;
    }
    match insn.operands.last() {
        Some(Operand::Reg(r)) => regs.contains(&r.num()),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips_through_serde() {
        for mode in ContextMode::ALL {
            let v = mode.to_value();
            assert_eq!(ContextMode::from_value(&v).unwrap(), mode);
            assert_eq!(ContextMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(
            <ContextMode as Deserialize>::missing(),
            Some(ContextMode::FunctionLocal)
        );
        assert!(ContextMode::parse("nope").is_none());
    }

    #[test]
    fn function_local_plan_matches_baseline_shape() {
        use cati_asm::parse::parse_insn;
        let insns: Vec<Located> = (0..5)
            .map(|k| Located {
                addr: 0x1000 + k * 3,
                len: 3,
                insn: parse_insn("mov -0x8(%rbp),%eax").unwrap().insn,
            })
            .collect();
        let bodies: Vec<Option<&[Located]>> = vec![Some(&insns)];
        let asm = ContextAssembler::new(ContextMode::FunctionLocal, &bodies);
        let var = TargetVar {
            vid: 0,
            offset: -8,
            frame_base: cati_asm::reg::regs::rbp(),
            insn_var: &[Some(0); 5],
        };
        let plan = asm.plan(0, 2, &var);
        assert_eq!(plan.slots.len(), VUC_LEN);
        assert_eq!(plan.slots[WINDOW], Slot::Local(2));
        assert_eq!(plan.padded(), VUC_LEN - 5);
        assert_eq!(plan.spliced(), 0);
        for (k, slot) in plan.slots.iter().enumerate() {
            let j = k as i64 + 2 - WINDOW as i64;
            if (0..5).contains(&j) {
                assert_eq!(*slot, Slot::Local(j as usize));
            } else {
                assert_eq!(*slot, Slot::Blank);
            }
        }
    }
}
