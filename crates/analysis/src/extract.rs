//! Variable location and VUC extraction (paper §III–§IV).
//!
//! A *target instruction* is a memory-access or dereference
//! instruction whose memory operand is frame-relative — it operates
//! exactly one variable. For every target instruction we cut a
//! **Variable Usage Context**: the instruction plus `WINDOW`
//! instructions before and after (within the owning function,
//! BLANK-padded at the edges), generalized per Table II. VUCs whose
//! targets resolve to the same stack slot belong to the same variable
//! — the grouping the voting stage uses.

use crate::assemble::{ContextAssembler, ContextMode, Slot, TargetVar};
use cati_asm::binary::Binary;
use cati_asm::codec::Located;
use cati_asm::fmt::NoSymbols;
use cati_asm::generalize::{generalize, GenInsn};
use cati_asm::insn::MemAccess;
use cati_asm::reg::Gpr;
use cati_dwarf::{Debin17, DebugInfo, TypeClass, VarLocation};
use cati_obs::{Event, Observer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Context window radius: 10 instructions each side (paper §II-A).
pub const WINDOW: usize = 10;
/// Total VUC length: forward + target + backward.
pub const VUC_LEN: usize = 2 * WINDOW + 1;

/// Identifies one variable inside one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarKey {
    /// Index of the owning function.
    pub func: u32,
    /// Canonical slot base offset from the frame base.
    pub offset: i32,
}

/// One recovered variable with its VUC group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Identity.
    pub key: VarKey,
    /// Source name, when labeled from debug info.
    pub name: Option<String>,
    /// Ground-truth class (19-way), when labeled.
    pub class: Option<TypeClass>,
    /// Ground-truth label for the DEBIN comparison task, when labeled.
    pub debin: Option<Debin17>,
    /// Indices into [`Extraction::vucs`] of this variable's VUCs.
    pub vucs: Vec<u32>,
}

/// One Variable Usage Context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vuc {
    /// Exactly [`VUC_LEN`] generalized instructions; index [`WINDOW`]
    /// is the target instruction.
    pub insns: Vec<GenInsn>,
    /// Index of the owning variable in [`Extraction::vars`].
    pub var: u32,
    /// Ground-truth class of each *context* position's operated
    /// variable (`None` when the position is not a target instruction
    /// of a labeled variable) — drives the clustering statistics of
    /// paper Table V.
    pub context_classes: Vec<Option<TypeClass>>,
}

impl Vuc {
    /// Ground-truth class of the target variable, when labeled.
    pub fn class(&self, vars: &[Variable]) -> Option<TypeClass> {
        vars[self.var as usize].class
    }
}

/// The result of running extraction over one binary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    /// Name of the binary.
    pub binary_name: String,
    /// Recovered variables.
    pub vars: Vec<Variable>,
    /// All extracted VUCs.
    pub vucs: Vec<Vuc>,
}

impl Extraction {
    /// Only the variables carrying a ground-truth class label.
    pub fn labeled_vars(&self) -> impl Iterator<Item = (usize, &Variable)> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.class.is_some())
    }
}

/// How VUC features should be generalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureView {
    /// Use the binary's symbol table (training view: call targets
    /// resolve to `FUNC`).
    WithSymbols,
    /// Pretend the binary is stripped (test view: call targets
    /// generalize to `BLANK`).
    Stripped,
}

pub use crate::error::{CatiError, Coverage, Diagnostic, Diagnostics, ExtractError, PipelineStage};

/// Detects the frame base of a function from its prologue: a
/// `push %rbp; mov %rsp,%rbp` pair means `%rbp`-based frames,
/// otherwise accesses are `%rsp`-relative.
pub fn detect_frame_base(insns: &[Located]) -> Gpr {
    use cati_asm::mnemonic::Mnemonic;
    use cati_asm::reg::regs;
    for w in insns.windows(2).take(4) {
        let a = &w[0].insn;
        let b = &w[1].insn;
        if a.mnemonic == Mnemonic::PushQ
            && a.operands
                .first()
                .and_then(|o| o.as_gpr())
                .map(|r| r.is_bp())
                == Some(true)
            && b.mnemonic == Mnemonic::MovQ
            && b.operands
                .first()
                .and_then(|o| o.as_gpr())
                .map(|r| r.is_sp())
                == Some(true)
            && b.operands
                .get(1)
                .and_then(|o| o.as_gpr())
                .map(|r| r.is_bp())
                == Some(true)
        {
            return regs::rbp();
        }
    }
    regs::rsp()
}

/// Splits a linear-sweep listing into functions.
///
/// With a symbol table the split is exact; otherwise every `ret` ends
/// a function — correct for this substrate, and the approach linear
/// disassemblers fall back to on stripped input.
pub fn split_functions(insns: &[Located], binary: &Binary) -> Vec<(usize, usize)> {
    if !binary.symbols.is_empty() {
        let mut ranges = Vec::new();
        for sym in &binary.symbols {
            if sym.addr < binary.text_base {
                continue; // PLT pseudo-symbols live below the text base
            }
            let start = insns.partition_point(|l| l.addr < sym.addr);
            let end = insns.partition_point(|l| l.addr < sym.addr + sym.len);
            if start < end {
                ranges.push((start, end));
            }
        }
        ranges.sort_unstable();
        // Symbol tables can repeat an address (duplicates, aliases)
        // or declare lengths that spill into the next function, which
        // would double-count every VUC cut from the shared
        // instructions. One function per start address (the sort puts
        // the shortest candidate first), and each range is clipped to
        // begin after the previous one ends.
        ranges.dedup_by_key(|r| r.0);
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
        for (start, end) in ranges {
            let start = start.max(out.last().map_or(0, |&(_, prev_end)| prev_end));
            if start < end {
                out.push((start, end));
            }
        }
        return out;
    }
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, l) in insns.iter().enumerate() {
        if l.insn.mnemonic == cati_asm::mnemonic::Mnemonic::Ret {
            out.push((start, i + 1));
            start = i + 1;
        }
    }
    if start < insns.len() {
        out.push((start, insns.len()));
    }
    out
}

/// The frame-slot offset a target instruction touches, if its memory
/// operand is relative to `base` (directly or via a scaled index).
fn frame_offset_of(located: &Located, base: Gpr) -> Option<(i32, MemAccess)> {
    let (mem, access) = located.insn.mem_operand()?;
    let mem_base = mem.base?;
    (mem_base.num() == base.num()).then_some((mem.disp, access))
}

/// Extracts variables and VUCs from `binary`.
///
/// When the binary has a debug section, variables are labeled with
/// their ground-truth classes (typedefs resolved recursively); when it
/// does not, variables are recovered from the access pattern alone:
/// every maximal cluster of accessed offsets becomes one variable —
/// the posture of the inference pipeline on unseen stripped binaries.
///
/// # Errors
///
/// Fails if the text section does not decode or the debug section is
/// corrupt.
pub fn extract(binary: &Binary, view: FeatureView) -> Result<Extraction, ExtractError> {
    extract_observed(binary, view, &cati_obs::NOOP)
}

/// [`extract`] with an explicit [`ContextMode`]. `FunctionLocal` is
/// bit-identical to [`extract`]; `Interprocedural` splices caller and
/// callee context into the window padding.
///
/// # Errors
///
/// Same failure modes as [`extract`].
pub fn extract_mode(
    binary: &Binary,
    view: FeatureView,
    mode: ContextMode,
) -> Result<Extraction, ExtractError> {
    extract_mode_observed(binary, view, mode, &cati_obs::NOOP)
}

/// How many window slots the assembler padded vs spliced — the
/// boundary-context ledger behind the `extract.windows_padded` /
/// `extract.windows_spliced` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Slots emitted as BLANK padding.
    pub padded: u64,
    /// Slots filled from another function by an interprocedural
    /// splice rule.
    pub spliced: u64,
}

/// [`extract`] with telemetry: emits counters for functions scanned,
/// variables recovered (labeled and total), and VUCs cut. The returned
/// extraction is identical to the unobserved path for any observer.
///
/// # Errors
///
/// Same failure modes as [`extract`].
pub fn extract_observed(
    binary: &Binary,
    view: FeatureView,
    obs: &dyn Observer,
) -> Result<Extraction, ExtractError> {
    extract_mode_observed(binary, view, ContextMode::FunctionLocal, obs)
}

/// [`extract_mode`] with telemetry; see [`extract_observed`].
///
/// # Errors
///
/// Same failure modes as [`extract`].
pub fn extract_mode_observed(
    binary: &Binary,
    view: FeatureView,
    mode: ContextMode,
    obs: &dyn Observer,
) -> Result<Extraction, ExtractError> {
    let insns = binary.disassemble()?;
    let debug = match &binary.debug {
        Some(bytes) => Some(DebugInfo::parse(bytes)?),
        None => None,
    };
    let functions = split_functions(&insns, binary);
    let bodies: Vec<Option<&[Located]>> = functions
        .iter()
        .map(|&(start, end)| Some(&insns[start..end]))
        .collect();
    let (kept, vucs, windows) = extract_core(binary, &bodies, debug.as_ref(), view, mode);

    obs.event(&Event::Counter {
        name: "extract.functions",
        delta: functions.len() as u64,
    });
    obs.event(&Event::Counter {
        name: "extract.vars",
        delta: kept.len() as u64,
    });
    obs.event(&Event::Counter {
        name: "extract.vars_labeled",
        delta: kept.iter().filter(|v| v.class.is_some()).count() as u64,
    });
    obs.event(&Event::Counter {
        name: "extract.vucs",
        delta: vucs.len() as u64,
    });
    emit_window_counters(obs, windows);

    Ok(Extraction {
        binary_name: binary.name.clone(),
        vars: kept,
        vucs,
    })
}

fn emit_window_counters(obs: &dyn Observer, windows: WindowStats) {
    obs.event(&Event::Counter {
        name: "extract.windows_padded",
        delta: windows.padded,
    });
    obs.event(&Event::Counter {
        name: "extract.windows_spliced",
        delta: windows.spliced,
    });
}

/// The shared extraction loop: variable resolution and VUC cutting
/// over already-split function bodies.
///
/// `bodies[i]` is function `i`'s instructions, or `None` when the
/// lenient path skipped the function — indices stay stable either way,
/// so [`VarKey::func`] means the same thing in strict and degraded
/// runs of the same binary.
fn extract_core(
    binary: &Binary,
    bodies: &[Option<&[Located]>],
    debug: Option<&DebugInfo>,
    view: FeatureView,
    mode: ContextMode,
) -> (Vec<Variable>, Vec<Vuc>, WindowStats) {
    let mut vars: Vec<Variable> = Vec::new();
    let mut var_index: HashMap<VarKey, u32> = HashMap::new();
    let mut vucs: Vec<Vuc> = Vec::new();
    let mut windows = WindowStats::default();
    let assembler = ContextAssembler::new(mode, bodies);

    // Per-function: find targets, resolve to variables, cut windows.
    for (func_idx, slot) in bodies.iter().enumerate() {
        let Some(body) = *slot else { continue };
        let base = detect_frame_base(body);
        let func_entry = body.first().map(|l| l.addr).unwrap_or(0);
        let debug_func = debug
            .as_ref()
            .and_then(|d| d.functions.iter().find(|f| f.entry == func_entry));

        // First pass: per-instruction variable resolution.
        let mut insn_var: Vec<Option<u32>> = vec![None; body.len()];
        for (i, located) in body.iter().enumerate() {
            let Some((disp, _access)) = frame_offset_of(located, base) else {
                continue;
            };
            // Resolve to a canonical variable.
            let resolved = match (&debug, debug_func) {
                (Some(di), Some(df)) => di.var_at_frame_offset(df, disp).map(|vr| {
                    let VarLocation::Frame(slot) = vr.location else {
                        unreachable!()
                    };
                    (slot, Some(vr))
                }),
                _ => Some((disp, None)),
            };
            let Some((slot, var_record)) = resolved else {
                continue; // access outside any recorded variable
            };
            let key = VarKey {
                func: func_idx as u32,
                offset: slot,
            };
            let vid = *var_index.entry(key).or_insert_with(|| {
                vars.push(Variable {
                    key,
                    name: var_record.map(|r| r.name.clone()),
                    class: var_record.and_then(|r| TypeClass::of(&r.ty)),
                    debin: var_record.and_then(|r| Debin17::of(&r.ty)),
                    vucs: Vec::new(),
                });
                (vars.len() - 1) as u32
            });
            // Unlabeled (or union/void-typed) variables are recovered
            // but carry no class; they still get VUCs in stripped mode.
            insn_var[i] = Some(vid);
        }

        // Second pass: cut VUC windows.
        for (i, _located) in body.iter().enumerate() {
            let Some(vid) = insn_var[i] else { continue };
            // In labeled mode, skip variables the paper excludes
            // (no class) — they are still counted as recovered.
            if debug.is_some() && vars[vid as usize].class.is_none() {
                continue;
            }
            let target = TargetVar {
                vid,
                offset: vars[vid as usize].key.offset,
                frame_base: base,
                insn_var: &insn_var,
            };
            let plan = assembler.plan(func_idx as u32, i, &target);
            let mut window = Vec::with_capacity(VUC_LEN);
            let mut context_classes = Vec::with_capacity(VUC_LEN);
            for slot in &plan.slots {
                match *slot {
                    Slot::Blank => {
                        windows.padded += 1;
                        window.push(GenInsn::blank());
                        context_classes.push(None);
                    }
                    Slot::Local(j) => {
                        let gen = match view {
                            FeatureView::WithSymbols => generalize(&body[j].insn, binary),
                            FeatureView::Stripped => generalize(&body[j].insn, &NoSymbols),
                        };
                        window.push(gen);
                        context_classes.push(insn_var[j].and_then(|v| vars[v as usize].class));
                    }
                    spliced @ Slot::Spliced { .. } => {
                        windows.spliced += 1;
                        // A spliced instruction belongs to another
                        // function's frame; its operated variable (if
                        // any) is not resolvable here, so it carries
                        // no context class — exactly like padding.
                        let insn = assembler
                            .instruction(func_idx as u32, spliced)
                            .map(|l| &l.insn);
                        let gen = match (insn, view) {
                            (None, _) => GenInsn::blank(),
                            (Some(insn), FeatureView::WithSymbols) => generalize(insn, binary),
                            (Some(insn), FeatureView::Stripped) => generalize(insn, &NoSymbols),
                        };
                        window.push(gen);
                        context_classes.push(None);
                    }
                }
            }
            let vuc_id = vucs.len() as u32;
            vucs.push(Vuc {
                insns: window,
                var: vid,
                context_classes,
            });
            vars[vid as usize].vucs.push(vuc_id);
        }
    }

    // Drop variables that ended up with no VUCs (e.g. labeled-mode
    // variables of excluded classes), remapping indices.
    let mut remap = vec![u32::MAX; vars.len()];
    let mut kept = Vec::with_capacity(vars.len());
    for (old, var) in vars.into_iter().enumerate() {
        if var.vucs.is_empty() {
            continue;
        }
        remap[old] = kept.len() as u32;
        kept.push(var);
    }
    for vuc in &mut vucs {
        vuc.var = remap[vuc.var as usize];
        debug_assert_ne!(vuc.var, u32::MAX);
    }

    (kept, vucs, windows)
}

/// The result of a lenient (fault-isolated) extraction run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LenientExtraction {
    /// The (possibly partial) extraction.
    pub extraction: Extraction,
    /// How much of the binary was actually processed.
    pub coverage: Coverage,
    /// Non-fatal findings, in emission order.
    pub diagnostics: Diagnostics,
}

/// The byte ranges of the text section that belong to each function
/// symbol, mirroring the semantics of [`split_functions`]: PLT
/// pseudo-symbols below the text base are ignored, one function per
/// start address, later ranges clipped to begin after earlier ones
/// end, everything clamped to the section.
pub fn symbol_byte_ranges(binary: &Binary) -> Vec<(usize, usize)> {
    let text_len = binary.text.len();
    let mut ranges = Vec::new();
    for sym in &binary.symbols {
        if sym.addr < binary.text_base {
            continue;
        }
        let start = usize::try_from(sym.addr - binary.text_base)
            .unwrap_or(text_len)
            .min(text_len);
        let end = usize::try_from((sym.addr - binary.text_base).saturating_add(sym.len))
            .unwrap_or(text_len)
            .min(text_len);
        if start < end {
            ranges.push((start, end));
        }
    }
    ranges.sort_unstable();
    ranges.dedup_by_key(|r| r.0);
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
    for (start, end) in ranges {
        let start = start.max(out.last().map_or(0, |&(_, prev_end)| prev_end));
        if start < end {
            out.push((start, end));
        }
    }
    out
}

/// Fault-isolated extraction: never fails, reports what it skipped.
///
/// See [`extract_lenient_observed`].
pub fn extract_lenient(binary: &Binary, view: FeatureView) -> LenientExtraction {
    extract_lenient_observed(binary, view, &cati_obs::NOOP)
}

/// [`extract_lenient`] with an explicit [`ContextMode`].
pub fn extract_lenient_mode(
    binary: &Binary,
    view: FeatureView,
    mode: ContextMode,
) -> LenientExtraction {
    extract_lenient_mode_observed(binary, view, mode, &cati_obs::NOOP)
}

/// Fault-isolated extraction with telemetry.
///
/// The strict path ([`extract`]) refuses the whole binary on the first
/// bad byte. This path degrades instead:
///
/// - a corrupt debug section becomes a diagnostic and the binary is
///   processed unlabeled, the way a stripped binary is;
/// - when the full text decodes, the result is **bit-identical** to
///   the strict path's;
/// - when it does not, each symbol's byte range is decoded in
///   isolation and only the functions whose bytes are broken are
///   dropped (their indices are kept, so surviving [`VarKey`]s match
///   a strict run's);
/// - without symbols, a resynchronizing sweep keeps every decodable
///   region and records the gaps.
///
/// Emits `robust.skipped_fns`, `robust.bytes_skipped` and
/// `robust.diagnostics` counters on top of the usual `extract.*` set.
pub fn extract_lenient_observed(
    binary: &Binary,
    view: FeatureView,
    obs: &dyn Observer,
) -> LenientExtraction {
    extract_lenient_mode_observed(binary, view, ContextMode::FunctionLocal, obs)
}

/// [`extract_lenient_observed`] with an explicit [`ContextMode`].
///
/// Fault isolation composes with splicing: a function whose body was
/// skipped contributes no call-graph edges, so any splice that would
/// have drawn from it degrades back to BLANK padding instead of
/// poisoning the surviving windows.
pub fn extract_lenient_mode_observed(
    binary: &Binary,
    view: FeatureView,
    mode: ContextMode,
    obs: &dyn Observer,
) -> LenientExtraction {
    let mut diagnostics = Diagnostics::new();
    let mut coverage = Coverage {
        bytes_total: binary.text.len() as u64,
        debug_present: binary.debug.is_some(),
        ..Coverage::default()
    };

    // Debug info: corrupt sections downgrade to unlabeled recovery.
    let debug = match &binary.debug {
        Some(bytes) => match DebugInfo::parse(bytes) {
            Ok(di) => {
                coverage.debug_ok = true;
                Some(di)
            }
            Err(e) => {
                diagnostics.report(
                    PipelineStage::DebugParse,
                    None,
                    None,
                    format!("debug section rejected: {e}; continuing unlabeled"),
                );
                None
            }
        },
        None => None,
    };

    // Text: try the strict whole-section sweep first so the clean-path
    // result is bit-identical to `extract`; fall back to per-function
    // isolation (with symbols) or a resynchronizing sweep (without).
    let full = binary.disassemble();
    let mut owned_bodies: Vec<Option<Vec<Located>>> = Vec::new();
    let insns; // keeps the strict sweep alive for borrowing
    let bodies: Vec<Option<&[Located]>> = match full {
        Ok(decoded) => {
            insns = decoded;
            let functions = split_functions(&insns, binary);
            functions
                .iter()
                .map(|&(start, end)| Some(&insns[start..end]))
                .collect()
        }
        Err(first_err) if !binary.symbols.is_empty() => {
            let ranges = symbol_byte_ranges(binary);
            let mut covered = vec![false; binary.text.len()];
            for (func_idx, &(start, end)) in ranges.iter().enumerate() {
                let base = binary.text_base + start as u64;
                match cati_asm::codec::linear_sweep(&binary.text[start..end], base) {
                    Ok(body) => {
                        covered[start..end].iter_mut().for_each(|b| *b = true);
                        owned_bodies.push(Some(body));
                    }
                    Err(e) => {
                        coverage.functions_skipped += 1;
                        diagnostics.report(
                            PipelineStage::Decode,
                            Some(func_idx as u32),
                            Some(base),
                            format!("function body skipped: {e}"),
                        );
                        owned_bodies.push(None);
                    }
                }
            }
            if ranges.is_empty() {
                // Symbols exist but none overlap the text: nothing to
                // isolate, so surface the original failure.
                diagnostics.report(
                    PipelineStage::Decode,
                    None,
                    Some(binary.text_base),
                    format!("text section rejected: {first_err}"),
                );
            }
            coverage.bytes_skipped = covered.iter().filter(|&&b| !b).count() as u64;
            owned_bodies.iter().map(|b| b.as_deref()).collect()
        }
        Err(_) => {
            // No symbols to scope the damage: resynchronize and split
            // the surviving instructions at `ret` boundaries.
            let sweep = cati_asm::codec::linear_sweep_lenient(&binary.text, binary.text_base);
            for gap in &sweep.gaps {
                diagnostics.report(
                    PipelineStage::Decode,
                    None,
                    Some(binary.text_base + gap.offset as u64),
                    format!("skipped {} undecodable byte(s): {}", gap.len, gap.error),
                );
            }
            coverage.bytes_skipped = sweep.skipped_bytes() as u64;
            insns = sweep.insns;
            split_functions(&insns, binary)
                .iter()
                .map(|&(start, end)| Some(&insns[start..end]))
                .collect()
        }
    };

    coverage.functions_total = bodies.len() as u64;
    let (vars, vucs, windows) = extract_core(binary, &bodies, debug.as_ref(), view, mode);
    coverage.vars = vars.len() as u64;
    coverage.vucs = vucs.len() as u64;

    obs.event(&Event::Counter {
        name: "extract.functions",
        delta: bodies.len() as u64,
    });
    obs.event(&Event::Counter {
        name: "extract.vars",
        delta: vars.len() as u64,
    });
    obs.event(&Event::Counter {
        name: "extract.vars_labeled",
        delta: vars.iter().filter(|v| v.class.is_some()).count() as u64,
    });
    obs.event(&Event::Counter {
        name: "extract.vucs",
        delta: vucs.len() as u64,
    });
    emit_window_counters(obs, windows);
    obs.event(&Event::Counter {
        name: "robust.skipped_fns",
        delta: coverage.functions_skipped,
    });
    obs.event(&Event::Counter {
        name: "robust.bytes_skipped",
        delta: coverage.bytes_skipped,
    });
    obs.event(&Event::Counter {
        name: "robust.diagnostics",
        delta: diagnostics.total(),
    });

    LenientExtraction {
        extraction: Extraction {
            binary_name: binary.name.clone(),
            vars,
            vucs,
        },
        coverage,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_binary(opt: OptLevel, seed: u64) -> Binary {
        let profile = AppProfile::new("unit");
        let mut rng = StdRng::seed_from_u64(seed);
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt,
        };
        build_app(&profile, opts, 0.5, &mut rng).remove(0).binary
    }

    #[test]
    fn labeled_extraction_finds_variables() {
        let bin = sample_binary(OptLevel::O0, 1);
        let ex = extract(&bin, FeatureView::WithSymbols).unwrap();
        assert!(ex.vars.len() > 5, "found only {} vars", ex.vars.len());
        assert!(ex.vucs.len() >= ex.vars.len());
        // Every labeled variable's VUCs point back at it.
        for (i, var) in ex.vars.iter().enumerate() {
            assert!(!var.vucs.is_empty());
            for &v in &var.vucs {
                assert_eq!(ex.vucs[v as usize].var, i as u32);
            }
        }
    }

    #[test]
    fn vucs_are_exactly_21_instructions() {
        let bin = sample_binary(OptLevel::O0, 2);
        let ex = extract(&bin, FeatureView::WithSymbols).unwrap();
        for vuc in &ex.vucs {
            assert_eq!(vuc.insns.len(), VUC_LEN);
            assert_eq!(vuc.context_classes.len(), VUC_LEN);
        }
    }

    #[test]
    fn center_instruction_is_never_blank() {
        let bin = sample_binary(OptLevel::O2, 3);
        let ex = extract(&bin, FeatureView::WithSymbols).unwrap();
        for vuc in &ex.vucs {
            assert_ne!(vuc.insns[WINDOW].mnemonic(), "BLANK");
        }
    }

    #[test]
    fn stripped_view_has_no_func_tokens() {
        let bin = sample_binary(OptLevel::O0, 4);
        let labeled = extract(&bin, FeatureView::WithSymbols).unwrap();
        let stripped = extract(&bin, FeatureView::Stripped).unwrap();
        let has_func = |ex: &Extraction| {
            ex.vucs
                .iter()
                .flat_map(|v| v.insns.iter())
                .any(|g| g.iter().any(|t| t == "FUNC"))
        };
        assert!(
            has_func(&labeled),
            "symbolized view should contain FUNC tokens"
        );
        assert!(!has_func(&stripped));
    }

    #[test]
    fn stripped_binary_still_yields_variables() {
        let bin = sample_binary(OptLevel::O0, 5).strip();
        let ex = extract(&bin, FeatureView::Stripped).unwrap();
        assert!(!ex.vars.is_empty());
        assert!(ex
            .vars
            .iter()
            .all(|v| v.class.is_none() && v.name.is_none()));
    }

    #[test]
    fn oracle_and_stripped_agree_on_rbp_functions() {
        // At -O0 every access is rbp-relative with the slot base equal
        // to the declared frame offset for scalar variables, so the
        // stripped recovery should find at least as many variables.
        let bin = sample_binary(OptLevel::O0, 6);
        let labeled = extract(&bin, FeatureView::WithSymbols).unwrap();
        let stripped = extract(&bin.strip(), FeatureView::Stripped).unwrap();
        assert!(
            stripped.vars.len() >= labeled.vars.len(),
            "stripped {} < labeled {}",
            stripped.vars.len(),
            labeled.vars.len()
        );
    }

    #[test]
    fn struct_member_accesses_group_to_one_variable() {
        // Find a variable labeled `struct` with several VUCs whose
        // target offsets differ — member stores resolved to one slot.
        let mut found = false;
        for seed in 0..30 {
            let bin = sample_binary(OptLevel::O0, seed);
            let ex = extract(&bin, FeatureView::WithSymbols).unwrap();
            for var in &ex.vars {
                if var.class == Some(TypeClass::Struct) && var.vucs.len() >= 2 {
                    found = true;
                }
            }
            if found {
                break;
            }
        }
        assert!(
            found,
            "no struct variable with grouped member accesses in 30 binaries"
        );
    }

    #[test]
    fn typedefs_resolve_in_labels() {
        // Typedef'd ints must label as Int, not as their alias.
        let mut any_labeled = 0;
        for seed in 0..5 {
            let bin = sample_binary(OptLevel::O0, seed + 100);
            let ex = extract(&bin, FeatureView::WithSymbols).unwrap();
            any_labeled += ex.labeled_vars().count();
        }
        assert!(any_labeled > 20);
    }

    #[test]
    fn overlapping_and_duplicate_symbols_split_without_double_counting() {
        let mut bin = sample_binary(OptLevel::O0, 21);
        let insns = bin.disassemble().unwrap();
        let clean = split_functions(&insns, &bin);
        assert!(clean.len() >= 2, "need at least two functions");
        // Corrupt the symbol table the ways real ones are corrupt:
        // an exact duplicate, an alias at the same address with a
        // different length, and a symbol whose length spills into the
        // next function.
        let dup = bin.symbols[0].clone();
        bin.symbols.push(dup);
        let mut alias = bin.symbols[1].clone();
        alias.name = "alias".to_string();
        alias.len += 4;
        bin.symbols.push(alias);
        bin.symbols[0].len += bin.symbols[1].len / 2;
        let funcs = split_functions(&insns, &bin);
        // Every instruction belongs to at most one range, ranges are
        // sorted, non-empty, and in bounds.
        for w in funcs.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping ranges {w:?}");
        }
        for &(start, end) in &funcs {
            assert!(start < end, "empty range ({start}, {end})");
            assert!(end <= insns.len());
        }
        assert_eq!(
            funcs.len(),
            clean.len(),
            "duplicates/aliases must not add functions"
        );
    }

    #[test]
    fn lenient_matches_strict_on_clean_binary() {
        for view in [FeatureView::WithSymbols, FeatureView::Stripped] {
            let bin = sample_binary(OptLevel::O0, 8);
            let strict = extract(&bin, view).unwrap();
            let lenient = extract_lenient(&bin, view);
            assert_eq!(strict, lenient.extraction);
            assert!(lenient.coverage.is_complete());
            assert!(lenient.diagnostics.is_empty());
            assert!(lenient.coverage.debug_present && lenient.coverage.debug_ok);
            assert_eq!(lenient.coverage.vars, strict.vars.len() as u64);
        }
    }

    #[test]
    fn lenient_downgrades_corrupt_debug_to_unlabeled() {
        let mut bin = sample_binary(OptLevel::O0, 9);
        if let Some(debug) = bin.debug.as_mut() {
            let mid = debug.len() / 2;
            debug.truncate(mid);
        }
        assert!(extract(&bin, FeatureView::WithSymbols).is_err());
        let lenient = extract_lenient(&bin, FeatureView::WithSymbols);
        assert!(lenient.coverage.debug_present);
        assert!(!lenient.coverage.debug_ok);
        assert!(!lenient.coverage.is_complete());
        assert_eq!(lenient.diagnostics.entries.len(), 1);
        assert_eq!(
            lenient.diagnostics.entries[0].stage,
            PipelineStage::DebugParse
        );
        // Recovery proceeds unlabeled, like a stripped binary.
        assert!(!lenient.extraction.vars.is_empty());
        assert!(lenient.extraction.vars.iter().all(|v| v.class.is_none()));
    }

    #[test]
    fn lenient_isolates_a_broken_function() {
        let bin = sample_binary(OptLevel::O0, 10);
        let ranges = symbol_byte_ranges(&bin);
        assert!(ranges.len() >= 3, "need several functions");
        let clean = extract_lenient(&bin, FeatureView::Stripped);

        // Clobber the middle function's first opcode byte.
        let victim = ranges.len() / 2;
        let mut broken = bin.clone();
        broken.text[ranges[victim].0] = 0xFF;
        assert!(extract(&broken, FeatureView::Stripped).is_err());

        let lenient = extract_lenient(&broken, FeatureView::Stripped);
        assert_eq!(lenient.coverage.functions_skipped, 1);
        assert!(lenient.coverage.bytes_skipped > 0);
        assert!(lenient
            .diagnostics
            .entries
            .iter()
            .any(|d| d.stage == PipelineStage::Decode && d.func == Some(victim as u32)));
        // Only the victim's variables disappear; survivors keep their
        // function indices, so their keys match the clean run's.
        assert!(lenient
            .extraction
            .vars
            .iter()
            .all(|v| v.key.func != victim as u32));
        let surviving: Vec<_> = clean
            .extraction
            .vars
            .iter()
            .filter(|v| v.key.func != victim as u32)
            .map(|v| v.key)
            .collect();
        let lenient_keys: Vec<_> = lenient.extraction.vars.iter().map(|v| v.key).collect();
        assert_eq!(surviving, lenient_keys);
    }

    #[test]
    fn lenient_without_symbols_resynchronizes_around_gaps() {
        let bin = sample_binary(OptLevel::O0, 11).strip();
        let insns = bin.disassemble().unwrap();
        // Clobber an opcode byte at a mid-text instruction boundary —
        // operand payloads accept any byte, opcode positions do not.
        let mid = (insns[insns.len() / 2].addr - bin.text_base) as usize;
        let mut broken = bin.clone();
        broken.text[mid] = 0xFF;
        assert!(extract(&broken, FeatureView::Stripped).is_err());
        let lenient = extract_lenient(&broken, FeatureView::Stripped);
        assert!(lenient.coverage.bytes_skipped >= 1);
        assert!(lenient
            .diagnostics
            .entries
            .iter()
            .any(|d| d.stage == PipelineStage::Decode));
        assert!(!lenient.extraction.vars.is_empty());
    }

    #[test]
    fn symbol_ranges_mirror_split_semantics() {
        let mut bin = sample_binary(OptLevel::O0, 12);
        // Same corruption as the split_functions test: duplicates,
        // aliases, spilling lengths.
        let dup = bin.symbols[0].clone();
        bin.symbols.push(dup);
        let mut alias = bin.symbols[1].clone();
        alias.name = "alias".to_string();
        alias.len += 4;
        bin.symbols.push(alias);
        bin.symbols[0].len += bin.symbols[1].len / 2;
        let ranges = symbol_byte_ranges(&bin);
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping byte ranges {w:?}");
        }
        for &(start, end) in &ranges {
            assert!(start < end);
            assert!(end <= bin.text.len());
        }
        let insns = bin.disassemble().unwrap();
        assert_eq!(ranges.len(), split_functions(&insns, &bin).len());
    }

    #[test]
    fn function_local_mode_is_identical_to_default_extraction() {
        for seed in 0..6 {
            let bin = sample_binary(OptLevel::O0, 30 + seed);
            for view in [FeatureView::WithSymbols, FeatureView::Stripped] {
                let default = extract(&bin, view).unwrap();
                let explicit = extract_mode(&bin, view, ContextMode::FunctionLocal).unwrap();
                assert_eq!(default, explicit);
            }
        }
    }

    #[test]
    fn interproc_mode_keeps_varkeys_and_splices_some_windows() {
        let mut any_spliced = false;
        for seed in 0..30 {
            let bin = sample_binary(OptLevel::O0, 40 + seed);
            let local = extract(&bin, FeatureView::WithSymbols).unwrap();
            let inter =
                extract_mode(&bin, FeatureView::WithSymbols, ContextMode::Interprocedural).unwrap();
            // Splicing changes window *content*, never which variables
            // exist or how many VUCs each one owns.
            let keys = |ex: &Extraction| ex.vars.iter().map(|v| v.key).collect::<Vec<_>>();
            assert_eq!(keys(&local), keys(&inter));
            assert_eq!(local.vucs.len(), inter.vucs.len());
            for (a, b) in local.vucs.iter().zip(&inter.vucs) {
                assert_eq!(a.var, b.var);
                assert_eq!(a.insns.len(), b.insns.len());
                // Interior (non-padding) slots are untouched.
                assert_eq!(a.insns[WINDOW], b.insns[WINDOW]);
                for (ga, gb) in a.insns.iter().zip(&b.insns) {
                    if ga.mnemonic() != "BLANK" {
                        assert_eq!(ga, gb, "splice must only replace BLANK padding");
                    }
                }
            }
            if local.vucs.iter().zip(&inter.vucs).any(|(a, b)| a != b) {
                any_spliced = true;
            }
        }
        assert!(
            any_spliced,
            "no window gained interprocedural context in 30 binaries"
        );
    }

    #[test]
    fn interproc_lenient_matches_strict_on_clean_binary() {
        let bin = sample_binary(OptLevel::O0, 13);
        for view in [FeatureView::WithSymbols, FeatureView::Stripped] {
            let strict = extract_mode(&bin, view, ContextMode::Interprocedural).unwrap();
            let lenient = extract_lenient_mode(&bin, view, ContextMode::Interprocedural);
            assert_eq!(strict, lenient.extraction);
            assert!(lenient.diagnostics.is_empty());
        }
    }

    #[test]
    fn window_counters_account_for_every_edge_slot() {
        fn counter(obs: &cati_obs::Recorder, name: &str) -> u64 {
            obs.snapshot()
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        }
        let bin = sample_binary(OptLevel::O0, 14);
        let obs = cati_obs::Recorder::new(cati_obs::RecorderConfig::default());
        let ex = extract_mode_observed(
            &bin,
            FeatureView::WithSymbols,
            ContextMode::Interprocedural,
            &obs,
        )
        .unwrap();
        let padded = counter(&obs, "extract.windows_padded");
        let spliced = counter(&obs, "extract.windows_spliced");
        let blanks: u64 = ex
            .vucs
            .iter()
            .flat_map(|v| v.insns.iter())
            .filter(|g| g.tokens.iter().all(|t| t == "BLANK"))
            .count() as u64;
        // Every BLANK slot was counted as padding; spliced slots are
        // the non-blank remainder of the edge overhang.
        assert_eq!(padded, blanks);
        let local_obs = cati_obs::Recorder::new(cati_obs::RecorderConfig::default());
        extract_observed(&bin, FeatureView::WithSymbols, &local_obs).unwrap();
        assert_eq!(counter(&local_obs, "extract.windows_spliced"), 0);
        assert_eq!(
            counter(&local_obs, "extract.windows_padded"),
            padded + spliced,
            "splices must replace padding one-for-one"
        );
    }

    #[test]
    fn function_split_matches_symbols() {
        let bin = sample_binary(OptLevel::O1, 7);
        let insns = bin.disassemble().unwrap();
        let funcs = split_functions(&insns, &bin);
        let n_real_syms = bin
            .symbols
            .iter()
            .filter(|s| s.addr >= bin.text_base)
            .count();
        assert_eq!(funcs.len(), n_real_syms);
        // Stripped split-by-ret finds the same count here.
        let stripped = bin.strip();
        let funcs2 = split_functions(&insns, &stripped);
        assert_eq!(funcs2.len(), funcs.len());
    }
}
