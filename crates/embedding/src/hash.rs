//! A fast, non-cryptographic hasher for the instruction-column cache.
//!
//! The embedding hot path performs one cache lookup per instruction
//! per VUC, and a [`GenInsn`](cati_asm::generalize::GenInsn) key hashes
//! three short heap strings — with the standard library's SipHash that
//! hashing dominates bulk embedding. This is the rustc-hash (FxHash)
//! recipe: fold 8-byte words with a rotate/xor/multiply. It is *not*
//! DoS-resistant; the cache is a bounded memo over the generalized
//! instruction alphabet (a few thousand entries), so a colliding
//! workload degrades one analysis, never a shared table.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (same constant rustc uses).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Word-folding FxHash state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        let h = |s: &str| {
            use std::hash::Hash;
            let mut hasher = FxHasher::default();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h("mov"), h("mov"));
        assert_ne!(h("mov"), h("movq"));
        assert_ne!(h("lea"), h("leaq"));
        // Note: zero words folded from the zero state are absorbed
        // ("" and "\0" collide) — an accepted FxHash property; a rare
        // collision only costs an equality probe in the cache.
    }

    #[test]
    fn map_round_trips_string_tuples() {
        let mut m: FxHashMap<[String; 3], usize> = FxHashMap::default();
        let key = ["mov".to_string(), "RSP".to_string(), "REG".to_string()];
        m.insert(key.clone(), 7);
        assert_eq!(m.get(&key), Some(&7));
        assert_eq!(m.len(), 1);
    }
}
