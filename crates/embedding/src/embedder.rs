//! VUC → CNN-input embedding.
//!
//! Each instruction is three tokens; each token embeds to `dim`
//! floats; a VUC of `L` instructions becomes a `[3*dim][L]`
//! channel-major matrix — the paper's 21×96 input at dim = 32.

use crate::word2vec::Word2Vec;
use cati_asm::generalize::{GenInsn, TOKENS_PER_INSN};
use serde::{Deserialize, Serialize};

/// Embeds generalized instruction windows into CNN input tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VucEmbedder {
    model: Word2Vec,
}

impl VucEmbedder {
    /// Wraps a trained Word2Vec model.
    pub fn new(model: Word2Vec) -> VucEmbedder {
        VucEmbedder { model }
    }

    /// Per-token embedding dimension.
    pub fn token_dim(&self) -> usize {
        self.model.cfg.dim
    }

    /// Channel count of the produced tensors (`3 × token_dim`).
    pub fn embed_dim(&self) -> usize {
        TOKENS_PER_INSN * self.model.cfg.dim
    }

    /// The underlying Word2Vec model.
    pub fn model(&self) -> &Word2Vec {
        &self.model
    }

    /// Embeds a window of instructions into a `[embed_dim][len]`
    /// channel-major tensor (`x[c * len + t]`). Out-of-vocabulary
    /// tokens embed to zero — by construction generalization covers
    /// >99% of unseen instructions (paper §IV-B), so this is rare.
    pub fn embed_window(&self, insns: &[GenInsn]) -> Vec<f32> {
        let len = insns.len();
        let dim = self.model.cfg.dim;
        let mut x = vec![0.0f32; self.embed_dim() * len];
        for (t, insn) in insns.iter().enumerate() {
            for (k, token) in insn.iter().enumerate() {
                if let Some(v) = self.model.vector(token) {
                    for (d, &val) in v.iter().enumerate() {
                        x[(k * dim + d) * len + t] = val;
                    }
                }
            }
        }
        x
    }

    /// Fraction of tokens in `insns` that are in-vocabulary; the
    /// coverage figure the paper quotes as >99%.
    pub fn coverage<'a>(&self, windows: impl IntoIterator<Item = &'a Vec<GenInsn>>) -> f64 {
        let mut total = 0u64;
        let mut known = 0u64;
        for window in windows {
            for insn in window {
                for token in insn.iter() {
                    total += 1;
                    if self.model.vocab.id(token).is_some() {
                        known += 1;
                    }
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            known as f64 / total as f64
        }
    }
}

/// Flattens instruction windows into token sentences for Word2Vec
/// training (one sentence per window or function stream).
pub fn to_sentences<'a>(windows: impl IntoIterator<Item = &'a [GenInsn]>) -> Vec<Vec<String>> {
    windows
        .into_iter()
        .map(|w| {
            w.iter()
                .flat_map(|insn| insn.iter().map(str::to_string))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word2vec::W2vConfig;
    use cati_asm::fmt::NoSymbols;
    use cati_asm::parse::parse_insn;

    fn gen(line: &str) -> GenInsn {
        cati_asm::generalize::generalize(&parse_insn(line).unwrap().insn, &NoSymbols)
    }

    fn sample_windows() -> Vec<Vec<GenInsn>> {
        vec![
            vec![
                gen("movl $0x8,0x40(%rsp)"),
                gen("mov %rax,0xb0(%rsp)"),
                gen("ret"),
            ],
            vec![
                gen("lea 0x220(%rsp),%rax"),
                gen("movl $0x8,0x40(%rsp)"),
                gen("cltq"),
            ],
        ]
    }

    fn embedder() -> VucEmbedder {
        let windows = sample_windows();
        let sentences = to_sentences(windows.iter().map(Vec::as_slice));
        VucEmbedder::new(Word2Vec::train(&sentences, W2vConfig::tiny()))
    }

    #[test]
    fn embed_shape_is_channel_major() {
        let e = embedder();
        let w = sample_windows().remove(0);
        let x = e.embed_window(&w);
        assert_eq!(x.len(), e.embed_dim() * 3);
        assert_eq!(e.embed_dim(), 24); // 3 tokens × 8 dims
    }

    #[test]
    fn blank_padding_embeds_consistently() {
        let e = embedder();
        let w = vec![GenInsn::blank(), gen("ret"), GenInsn::blank()];
        let x = e.embed_window(&w);
        let len = 3;
        // Both BLANK positions produce identical channel columns.
        for c in 0..e.embed_dim() {
            assert_eq!(x[c * len], x[c * len + 2]);
        }
    }

    #[test]
    fn oov_tokens_embed_to_zero() {
        let e = embedder();
        // `fldt` and `-0xIMM(%rbp)` were never seen in training; the
        // BLANK pad token was.
        let w = vec![gen("fldt -0x20(%rbp)")];
        let x = e.embed_window(&w);
        let dim = e.token_dim();
        // Channels of the first two token slots are all zero.
        assert!(x[..2 * dim].iter().all(|v| *v == 0.0));
        let cov = e.coverage(std::iter::once(&w));
        assert!(cov < 0.5, "coverage {cov}");
    }

    #[test]
    fn coverage_is_full_on_training_tokens() {
        let e = embedder();
        let windows = sample_windows();
        assert_eq!(e.coverage(windows.iter()), 1.0);
    }
}
