//! VUC → CNN-input embedding.
//!
//! Each instruction is three tokens; each token embeds to `dim`
//! floats; a VUC of `L` instructions becomes a `[3*dim][L]`
//! channel-major matrix — the paper's 21×96 input at dim = 32.
//!
//! The generalized-instruction alphabet is tiny relative to the
//! number of VUC instances, so the embedder memoizes the `3*dim`
//! channel column of every [`GenInsn`] it sees: embedding a window
//! becomes stitching cached rows into the channel-major layout, and
//! occlusion probes can patch a single position in place.

use crate::hash::FxHashMap;
use crate::word2vec::Word2Vec;
use cati_asm::generalize::{GenInsn, TOKENS_PER_INSN};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Embeds generalized instruction windows into CNN input tensors.
///
/// Carries a memoizing per-instruction cache; the cache is pure
/// derived state (exactly the floats [`Word2Vec::vector`] returns, or
/// zeros for out-of-vocabulary tokens), so it never affects results,
/// equality, or the serialized form.
#[derive(Debug)]
pub struct VucEmbedder {
    model: Word2Vec,
    /// `GenInsn` → its `embed_dim()` channel column. Keyed with the
    /// crate-local [`FxHashMap`]: one lookup per instruction per VUC
    /// makes SipHash over three strings the bulk-embedding bottleneck.
    cache: RwLock<FxHashMap<GenInsn, Arc<[f32]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Clone for VucEmbedder {
    fn clone(&self) -> VucEmbedder {
        VucEmbedder {
            model: self.model.clone(),
            cache: RwLock::new(self.cache.read().expect("embed cache lock").clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PartialEq for VucEmbedder {
    fn eq(&self, other: &VucEmbedder) -> bool {
        self.model == other.model
    }
}

impl Serialize for VucEmbedder {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("model".to_string(), self.model.to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for VucEmbedder {
    fn from_value(v: &serde::Value) -> Result<VucEmbedder, serde::DeError> {
        let m = serde::as_object_for(v, "VucEmbedder")?;
        Ok(VucEmbedder::new(serde::field(m, "model", "VucEmbedder")?))
    }
}

impl VucEmbedder {
    /// Wraps a trained Word2Vec model.
    pub fn new(model: Word2Vec) -> VucEmbedder {
        VucEmbedder {
            model,
            cache: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Per-token embedding dimension.
    pub fn token_dim(&self) -> usize {
        self.model.cfg.dim
    }

    /// Channel count of the produced tensors (`3 × token_dim`).
    pub fn embed_dim(&self) -> usize {
        TOKENS_PER_INSN * self.model.cfg.dim
    }

    /// The underlying Word2Vec model.
    pub fn model(&self) -> &Word2Vec {
        &self.model
    }

    /// Quantizes the embedding matrices in place (see
    /// [`Word2Vec::quantize`]) and drops every cached instruction
    /// column — cached columns are derived from the pre-quantization
    /// matrix and would otherwise leak full-precision floats into
    /// quantized inference.
    pub fn quantize(&mut self, mode: cati_nn::QuantMode) {
        self.model.quantize(mode);
        self.cache.write().expect("embed cache lock").clear();
    }

    /// How many of the model's matrices still read straight out of a
    /// memory-mapped container (zero-copy load diagnostics).
    pub fn mapped_param_count(&self) -> usize {
        self.model.mapped_param_count()
    }

    /// The `embed_dim()` channel column of one instruction, straight
    /// from the model (no cache involved).
    fn compute_column(&self, insn: &GenInsn) -> Vec<f32> {
        let dim = self.model.cfg.dim;
        let mut col = vec![0.0f32; self.embed_dim()];
        for (k, token) in insn.iter().enumerate() {
            if let Some(v) = self.model.vector(token) {
                col[k * dim..(k + 1) * dim].copy_from_slice(v);
            }
        }
        col
    }

    /// The memoized channel column of one instruction.
    fn insn_column(&self, insn: &GenInsn) -> Arc<[f32]> {
        if let Some(col) = self.cache.read().expect("embed cache lock").get(insn) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(col);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let col: Arc<[f32]> = Arc::from(self.compute_column(insn));
        Arc::clone(
            self.cache
                .write()
                .expect("embed cache lock")
                .entry(insn.clone())
                .or_insert(col),
        )
    }

    /// Embeds a window of instructions into a `[embed_dim][len]`
    /// channel-major tensor (`x[c * len + t]`). Out-of-vocabulary
    /// tokens embed to zero — by construction generalization covers
    /// >99% of unseen instructions (paper §IV-B), so this is rare.
    pub fn embed_window(&self, insns: &[GenInsn]) -> Vec<f32> {
        let mut x = vec![0.0f32; self.embed_dim() * insns.len()];
        self.embed_window_into(insns, &mut x);
        x
    }

    /// [`VucEmbedder::embed_window`] writing into a caller-provided
    /// buffer — the flat-tensor fast path: embedding a whole
    /// extraction fills one row of a contiguous matrix per VUC with
    /// no per-row allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an `embed_dim × insns.len()` buffer.
    pub fn embed_window_into(&self, insns: &[GenInsn], x: &mut [f32]) {
        let len = insns.len();
        assert_eq!(x.len(), self.embed_dim() * len, "tensor/len mismatch");
        x.fill(0.0);
        for (t, insn) in insns.iter().enumerate() {
            let col = self.insn_column(insn);
            for (c, &v) in col.iter().enumerate() {
                x[c * len + t] = v;
            }
        }
    }

    /// Ensures every instruction of `windows` has a cached channel
    /// column, inserting all misses under a single write lock (the
    /// per-insn path takes the lock once per new instruction).
    ///
    /// Purely a cache warm-up: it never touches the hit/miss
    /// telemetry, which is accounted by the lookup paths.
    pub fn prime<'a>(&self, windows: impl IntoIterator<Item = &'a [GenInsn]>) {
        let mut fresh: FxHashMap<GenInsn, Arc<[f32]>> = FxHashMap::default();
        {
            let cache = self.cache.read().expect("embed cache lock");
            for w in windows {
                for insn in w {
                    if !cache.contains_key(insn) && !fresh.contains_key(insn) {
                        fresh.insert(insn.clone(), Arc::from(self.compute_column(insn)));
                    }
                }
            }
        }
        if fresh.is_empty() {
            return;
        }
        let mut cache = self.cache.write().expect("embed cache lock");
        for (insn, col) in fresh {
            cache.entry(insn).or_insert(col);
        }
    }

    /// A read-locked view of the column cache for embedding many
    /// windows in bulk: one lock acquisition for the whole batch
    /// instead of one per instruction, and columns are borrowed
    /// straight from the map (no per-lookup `Arc` traffic). The view
    /// is `Sync`, so parallel workers filling disjoint tensor rows
    /// can share it.
    ///
    /// Writers (including [`VucEmbedder::prime`] and the per-insn
    /// miss path) block while a view is alive — keep its scope to one
    /// batch.
    pub fn columns(&self) -> ColumnView<'_> {
        // Window edges are BLANK-padded, so the all-BLANK instruction
        // is by far the most frequent key; the view resolves its
        // column once up front and matches it by direct comparison,
        // skipping the hash-and-probe entirely for padding.
        let blank = GenInsn::blank();
        let blank_col = self.compute_column(&blank);
        let guard = self.cache.read().expect("embed cache lock");
        let blank_cached = guard.contains_key(&blank);
        ColumnView {
            guard,
            model: &self.model,
            blank,
            blank_col,
            blank_cached,
        }
    }

    /// Adds a batch of lookups to the hit/miss telemetry — the bulk
    /// embedding path accounts one extraction at a time instead of
    /// bumping two atomics per instruction.
    pub fn record_usage(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Overwrites window position `t` of a tensor produced by
    /// [`VucEmbedder::embed_window`] with `insn`'s channel column —
    /// the occlusion fast path: a probe that blanks one instruction
    /// patches `embed_dim` floats instead of re-embedding all `len`
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an `embed_dim × len` tensor or `t` is out
    /// of range.
    pub fn patch_window_position(&self, x: &mut [f32], len: usize, t: usize, insn: &GenInsn) {
        assert_eq!(x.len(), self.embed_dim() * len, "tensor/len mismatch");
        assert!(t < len, "position {t} out of range for window of {len}");
        let col = self.insn_column(insn);
        for (c, &v) in col.iter().enumerate() {
            x[c * len + t] = v;
        }
    }

    /// `(hits, misses)` of the instruction-column cache since this
    /// instance was created (clones start back at zero).
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct instructions currently cached.
    pub fn cached_insns(&self) -> usize {
        self.cache.read().expect("embed cache lock").len()
    }

    /// Fraction of tokens in `insns` that are in-vocabulary; the
    /// coverage figure the paper quotes as >99%.
    pub fn coverage<'a>(&self, windows: impl IntoIterator<Item = &'a Vec<GenInsn>>) -> f64 {
        let mut total = 0u64;
        let mut known = 0u64;
        for window in windows {
            for insn in window {
                for token in insn.iter() {
                    total += 1;
                    if self.model.vocab.id(token).is_some() {
                        known += 1;
                    }
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            known as f64 / total as f64
        }
    }
}

/// A read-locked bulk view of a [`VucEmbedder`]'s column cache; see
/// [`VucEmbedder::columns`].
#[derive(Debug)]
pub struct ColumnView<'a> {
    guard: std::sync::RwLockReadGuard<'a, FxHashMap<GenInsn, Arc<[f32]>>>,
    model: &'a Word2Vec,
    /// The all-BLANK padding instruction, matched by equality (its
    /// mnemonic differs from every real generalized mnemonic, so the
    /// comparison fails fast on length).
    blank: GenInsn,
    /// Pre-resolved channel column for [`ColumnView::blank`] — the
    /// same floats [`VucEmbedder::compute_column`] produces, so the
    /// fast path is bit-identical to a cache hit or miss.
    blank_col: Vec<f32>,
    /// Whether the shared cache already held the BLANK column when
    /// this view was taken; if not, BLANK occurrences still count as
    /// misses so the caller's re-prime inserts it.
    blank_cached: bool,
}

impl ColumnView<'_> {
    /// Bit-identical to [`VucEmbedder::embed_window_into`], reading
    /// columns through the held guard. Instructions missing from the
    /// cache are computed directly into the tensor (same floats, not
    /// inserted — a read lock cannot grow the map); the returned miss
    /// count lets the caller re-[`VucEmbedder::prime`] afterwards and
    /// feed [`VucEmbedder::record_usage`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an `embed_dim × insns.len()` buffer.
    pub fn fill_window(&self, insns: &[GenInsn], x: &mut [f32]) -> usize {
        let len = insns.len();
        let dim = self.model.cfg.dim;
        let embed_dim = TOKENS_PER_INSN * dim;
        assert_eq!(x.len(), embed_dim * len, "tensor/len mismatch");
        let mut misses = 0usize;
        for (t, insn) in insns.iter().enumerate() {
            if *insn == self.blank {
                if !self.blank_cached {
                    misses += 1;
                }
                for (xc, &v) in x.chunks_exact_mut(len).zip(self.blank_col.iter()) {
                    xc[t] = v;
                }
            } else if let Some(col) = self.guard.get(insn) {
                for (xc, &v) in x.chunks_exact_mut(len).zip(col.iter()) {
                    xc[t] = v;
                }
            } else {
                misses += 1;
                for c in 0..embed_dim {
                    x[c * len + t] = 0.0;
                }
                for (k, token) in insn.iter().enumerate() {
                    if let Some(v) = self.model.vector(token) {
                        for (d, &val) in v.iter().enumerate() {
                            x[(k * dim + d) * len + t] = val;
                        }
                    }
                }
            }
        }
        misses
    }
}

/// Flattens instruction windows into token sentences for Word2Vec
/// training (one sentence per window or function stream).
pub fn to_sentences<'a>(windows: impl IntoIterator<Item = &'a [GenInsn]>) -> Vec<Vec<String>> {
    windows
        .into_iter()
        .map(|w| {
            w.iter()
                .flat_map(|insn| insn.iter().map(str::to_string))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word2vec::W2vConfig;
    use cati_asm::fmt::NoSymbols;
    use cati_asm::parse::parse_insn;

    fn gen(line: &str) -> GenInsn {
        cati_asm::generalize::generalize(&parse_insn(line).unwrap().insn, &NoSymbols)
    }

    fn sample_windows() -> Vec<Vec<GenInsn>> {
        vec![
            vec![
                gen("movl $0x8,0x40(%rsp)"),
                gen("mov %rax,0xb0(%rsp)"),
                gen("ret"),
            ],
            vec![
                gen("lea 0x220(%rsp),%rax"),
                gen("movl $0x8,0x40(%rsp)"),
                gen("cltq"),
            ],
        ]
    }

    fn embedder() -> VucEmbedder {
        let windows = sample_windows();
        let sentences = to_sentences(windows.iter().map(Vec::as_slice));
        VucEmbedder::new(Word2Vec::train(&sentences, W2vConfig::tiny()))
    }

    /// The original non-memoized embedding, kept as the oracle the
    /// cached path must match bit for bit.
    fn embed_window_uncached(e: &VucEmbedder, insns: &[GenInsn]) -> Vec<f32> {
        let len = insns.len();
        let dim = e.token_dim();
        let mut x = vec![0.0f32; e.embed_dim() * len];
        for (t, insn) in insns.iter().enumerate() {
            for (k, token) in insn.iter().enumerate() {
                if let Some(v) = e.model().vector(token) {
                    for (d, &val) in v.iter().enumerate() {
                        x[(k * dim + d) * len + t] = val;
                    }
                }
            }
        }
        x
    }

    #[test]
    fn embed_shape_is_channel_major() {
        let e = embedder();
        let w = sample_windows().remove(0);
        let x = e.embed_window(&w);
        assert_eq!(x.len(), e.embed_dim() * 3);
        assert_eq!(e.embed_dim(), 24); // 3 tokens × 8 dims
    }

    #[test]
    fn blank_padding_embeds_consistently() {
        let e = embedder();
        let w = vec![GenInsn::blank(), gen("ret"), GenInsn::blank()];
        let x = e.embed_window(&w);
        let len = 3;
        // Both BLANK positions produce identical channel columns.
        for c in 0..e.embed_dim() {
            assert_eq!(x[c * len], x[c * len + 2]);
        }
    }

    #[test]
    fn oov_tokens_embed_to_zero() {
        let e = embedder();
        // `fldt` and `-0xIMM(%rbp)` were never seen in training; the
        // BLANK pad token was.
        let w = vec![gen("fldt -0x20(%rbp)")];
        let x = e.embed_window(&w);
        let dim = e.token_dim();
        // Channels of the first two token slots are all zero.
        assert!(x[..2 * dim].iter().all(|v| *v == 0.0));
        let cov = e.coverage(std::iter::once(&w));
        assert!(cov < 0.5, "coverage {cov}");
    }

    #[test]
    fn coverage_is_full_on_training_tokens() {
        let e = embedder();
        let windows = sample_windows();
        assert_eq!(e.coverage(windows.iter()), 1.0);
    }

    #[test]
    fn cached_embedding_matches_uncached_oracle() {
        let e = embedder();
        for w in sample_windows() {
            // First pass populates the cache, second pass hits it;
            // both must equal the direct per-token lookup bit for bit.
            let oracle = embed_window_uncached(&e, &w);
            assert_eq!(e.embed_window(&w), oracle);
            assert_eq!(e.embed_window(&w), oracle);
        }
        let (hits, misses) = e.cache_stats();
        assert!(hits > 0, "second pass must hit the cache");
        assert_eq!(misses as usize, e.cached_insns());
    }

    #[test]
    fn patch_matches_full_reembedding() {
        let e = embedder();
        let w = sample_windows().remove(0);
        let x = e.embed_window(&w);
        for t in 0..w.len() {
            let mut occluded = w.clone();
            occluded[t] = GenInsn::blank();
            let full = e.embed_window(&occluded);
            let mut patched = x.clone();
            e.patch_window_position(&mut patched, w.len(), t, &GenInsn::blank());
            assert_eq!(patched, full, "patch at position {t} diverged");
        }
    }

    #[test]
    fn bulk_fill_matches_per_insn_path_cold_and_warm() {
        let windows = sample_windows();
        for warm in [false, true] {
            let e = embedder();
            if warm {
                e.prime(windows.iter().map(Vec::as_slice));
                assert!(e.cached_insns() > 0, "prime populated nothing");
            }
            let view = e.columns();
            for w in &windows {
                let mut bulk = vec![f32::NAN; e.embed_dim() * w.len()];
                let misses = view.fill_window(w, &mut bulk);
                assert_eq!(
                    misses == 0,
                    warm,
                    "warm={warm} should mean zero bulk misses"
                );
                let oracle = embed_window_uncached(&e, w);
                assert_eq!(bulk, oracle, "bulk fill diverged (warm={warm})");
            }
        }
    }

    #[test]
    fn prime_is_idempotent_and_skips_telemetry() {
        let e = embedder();
        let windows = sample_windows();
        e.prime(windows.iter().map(Vec::as_slice));
        let n = e.cached_insns();
        assert!(n > 0);
        e.prime(windows.iter().map(Vec::as_slice));
        assert_eq!(e.cached_insns(), n, "second prime must not grow the cache");
        assert_eq!(e.cache_stats(), (0, 0), "prime never counts hits/misses");
        e.record_usage(7, 3);
        assert_eq!(e.cache_stats(), (7, 3));
    }

    #[test]
    fn serde_roundtrip_drops_cache_but_keeps_model() {
        let e = embedder();
        e.embed_window(&sample_windows()[0]);
        assert!(e.cached_insns() > 0);
        let json = serde_json::to_string(&e).unwrap();
        let back: VucEmbedder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e, "model must survive the roundtrip");
        assert_eq!(back.cached_insns(), 0, "cache is not serialized");
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn clone_copies_cache_but_resets_stats() {
        let e = embedder();
        e.embed_window(&sample_windows()[0]);
        let c = e.clone();
        assert_eq!(c.cached_insns(), e.cached_insns());
        assert_eq!(c.cache_stats(), (0, 0));
        assert_eq!(c, e);
    }
}
