//! Token vocabulary with a unigram table for negative sampling.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A token vocabulary built from a corpus.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    counts: Vec<u64>,
    /// Token → id. [`FxHashMap`] because the embedding miss path does
    /// three lookups per instruction occurrence.
    index: FxHashMap<String, u32>,
}

impl Vocab {
    /// Builds a vocabulary from token streams, keeping tokens with at
    /// least `min_count` occurrences, ordered by descending frequency.
    pub fn build<'a>(
        sentences: impl IntoIterator<Item = &'a Vec<String>>,
        min_count: u64,
    ) -> Vocab {
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for sentence in sentences {
            for tok in sentence {
                *counts.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(&str, u64)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut vocab = Vocab::default();
        for (tok, count) in pairs {
            vocab
                .index
                .insert(tok.to_string(), vocab.tokens.len() as u32);
            vocab.tokens.push(tok.to_string());
            vocab.counts.push(count);
        }
        vocab
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Token id, if in vocabulary.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token string for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Occurrence count for an id.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Builds the `count^0.75` unigram table used for negative
    /// sampling, with `size` slots.
    pub fn unigram_table(&self, size: usize) -> Vec<u32> {
        if self.is_empty() {
            return Vec::new();
        }
        let pow: Vec<f64> = self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = pow.iter().sum();
        let mut table = Vec::with_capacity(size);
        let mut cum = 0.0;
        let mut id = 0usize;
        for slot in 0..size {
            let target = (slot as f64 + 0.5) / size as f64 * total;
            while cum + pow[id] < target && id + 1 < pow.len() {
                cum += pow[id];
                id += 1;
            }
            table.push(id as u32);
        }
        table
    }

    /// Encodes a sentence to ids, dropping out-of-vocabulary tokens.
    pub fn encode(&self, sentence: &[String]) -> Vec<u32> {
        sentence.iter().filter_map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        let s = |v: &[&str]| v.iter().map(|t| t.to_string()).collect::<Vec<_>>();
        vec![
            s(&["mov", "%rax", "%rbx", "mov", "%rax", "BLANK"]),
            s(&["add", "%rax", "mov", "rare"]),
        ]
    }

    #[test]
    fn frequency_order() {
        let v = Vocab::build(&corpus(), 1);
        // "mov" and "%rax" both occur 3 times; ties break
        // alphabetically, so "%rax" comes first.
        assert_eq!(v.token(0), "%rax");
        assert_eq!(v.token(1), "mov");
        assert_eq!(v.count(0), 3);
        assert!(v.id("rare").is_some());
        assert!(v.id("nonexistent").is_none());
    }

    #[test]
    fn min_count_filters() {
        let v = Vocab::build(&corpus(), 2);
        assert!(v.id("rare").is_none());
        assert!(v.id("mov").is_some());
    }

    #[test]
    fn unigram_table_prefers_frequent_tokens() {
        let v = Vocab::build(&corpus(), 1);
        let table = v.unigram_table(1000);
        assert_eq!(table.len(), 1000);
        let mov_id = v.id("mov").unwrap();
        let rare_id = v.id("rare").unwrap();
        let mov_slots = table.iter().filter(|&&t| t == mov_id).count();
        let rare_slots = table.iter().filter(|&&t| t == rare_id).count();
        assert!(mov_slots > rare_slots);
        assert!(rare_slots > 0);
    }

    #[test]
    fn encode_drops_oov() {
        let v = Vocab::build(&corpus(), 2);
        let ids = v.encode(&["mov".into(), "bogus".into(), "%rax".into()]);
        assert_eq!(ids.len(), 2);
    }
}
