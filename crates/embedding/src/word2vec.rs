//! Skip-gram Word2Vec with negative sampling (paper §IV-C, Eq. 1).
//!
//! Trained over instruction-token streams (window m = 5, dimension 32
//! at paper scale); the resulting input vectors feed the VUC embedder.

use crate::vocab::Vocab;
use cati_nn::{ParamBuf, QuantMode};
use cati_obs::{Event, Observer, SpanGuard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Word2Vec hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct W2vConfig {
    /// Embedding dimension (paper: 32).
    pub dim: usize,
    /// Maximum context distance m (paper: 5).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1/10th).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl W2vConfig {
    /// Paper-scale configuration.
    pub fn paper() -> W2vConfig {
        W2vConfig {
            dim: 32,
            window: 5,
            negatives: 5,
            epochs: 3,
            lr: 0.025,
            seed: 17,
        }
    }

    /// Small configuration for tests.
    pub fn tiny() -> W2vConfig {
        W2vConfig {
            dim: 8,
            window: 3,
            negatives: 3,
            epochs: 5,
            lr: 0.05,
            seed: 17,
        }
    }
}

/// A trained skip-gram model: input (word) and output (context)
/// embedding matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Word2Vec {
    /// The vocabulary the model was trained over.
    pub vocab: Vocab,
    /// Configuration used for training.
    pub cfg: W2vConfig,
    /// Input embeddings, `[vocab][dim]`; a [`ParamBuf`] so a model
    /// loaded from a CATI1 v2 container reads them zero-copy out of
    /// the mapped file.
    input: ParamBuf,
    /// Output embeddings, `[vocab][dim]`.
    output: ParamBuf,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Word2Vec {
    /// Trains a model over `sentences` (token streams).
    pub fn train(sentences: &[Vec<String>], cfg: W2vConfig) -> Word2Vec {
        Word2Vec::train_observed(sentences, cfg, &cati_obs::NOOP)
    }

    /// [`Word2Vec::train`] with telemetry: per-epoch spans plus
    /// corpus-size counters and a vocabulary gauge. The trained model
    /// is bit-identical to the unobserved path for any observer.
    pub fn train_observed(
        sentences: &[Vec<String>],
        cfg: W2vConfig,
        obs: &dyn Observer,
    ) -> Word2Vec {
        let vocab = Vocab::build(sentences, 1);
        obs.event(&Event::Counter {
            name: "embed.sentences",
            delta: sentences.len() as u64,
        });
        obs.event(&Event::Counter {
            name: "embed.tokens",
            delta: sentences.iter().map(Vec::len).sum::<usize>() as u64,
        });
        obs.event(&Event::Gauge {
            name: "embed.vocab_size",
            value: vocab.len() as f64,
        });
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = vocab.len().max(1);
        let mut input: Vec<f32> = (0..n * cfg.dim)
            .map(|_| rng.gen_range(-0.5..0.5) / cfg.dim as f32)
            .collect();
        let mut output = vec![0.0f32; n * cfg.dim];
        let table = vocab.unigram_table(100_000.min(n * 512).max(16));
        let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode(s)).collect();
        let total_steps: usize = encoded.iter().map(Vec::len).sum::<usize>().max(1) * cfg.epochs;
        let mut step = 0usize;
        let mut grad = vec![0.0f32; cfg.dim];

        for epoch in 0..cfg.epochs {
            let _epoch_span = SpanGuard::enter(obs, &format!("epoch{epoch}"));
            for sentence in &encoded {
                for (pos, &center) in sentence.iter().enumerate() {
                    step += 1;
                    let lr = cfg.lr * (1.0 - 0.9 * step as f32 / total_steps as f32).max(0.1);
                    // Dynamic window, as in the reference implementation.
                    let b = rng.gen_range(0..cfg.window.max(1));
                    let lo = pos.saturating_sub(cfg.window - b);
                    let hi = (pos + cfg.window - b + 1).min(sentence.len());
                    for (ctx_pos, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        let ci = center as usize * cfg.dim;
                        grad.fill(0.0);
                        // One positive + k negative updates.
                        for neg in 0..=cfg.negatives {
                            let (target, label) = if neg == 0 {
                                (context, 1.0f32)
                            } else {
                                (table[rng.gen_range(0..table.len())], 0.0)
                            };
                            if label == 0.0 && target == context {
                                continue;
                            }
                            let ti = target as usize * cfg.dim;
                            let dot: f32 =
                                (0..cfg.dim).map(|d| input[ci + d] * output[ti + d]).sum();
                            let g = (label - sigmoid(dot)) * lr;
                            for d in 0..cfg.dim {
                                grad[d] += g * output[ti + d];
                                output[ti + d] += g * input[ci + d];
                            }
                        }
                        for d in 0..cfg.dim {
                            input[ci + d] += grad[d];
                        }
                    }
                }
            }
        }
        Word2Vec {
            vocab,
            cfg,
            input: input.into(),
            output: output.into(),
        }
    }

    /// Reassembles a model from its parts — the binary model-container
    /// loading path. The matrices are flat `[vocab][dim]` row-major,
    /// exactly as [`Word2Vec::input_matrix`]/[`Word2Vec::output_matrix`]
    /// return them; mmap-backed [`ParamBuf`]s are installed without a
    /// copy (the zero-copy CATI1 v2 path).
    ///
    /// # Errors
    ///
    /// Fails when either matrix's length disagrees with
    /// `vocab.len().max(1) * cfg.dim`.
    pub fn from_parts(
        vocab: Vocab,
        cfg: W2vConfig,
        input: impl Into<ParamBuf>,
        output: impl Into<ParamBuf>,
    ) -> Result<Word2Vec, String> {
        let (input, output) = (input.into(), output.into());
        let want = vocab.len().max(1) * cfg.dim;
        if input.len() != want || output.len() != want {
            return Err(format!(
                "w2v matrices need {want} floats for {} tokens × {} dims, got input {} / output {}",
                vocab.len(),
                cfg.dim,
                input.len(),
                output.len()
            ));
        }
        Ok(Word2Vec {
            vocab,
            cfg,
            input,
            output,
        })
    }

    /// The flat `[vocab][dim]` input (word) embedding matrix.
    pub fn input_matrix(&self) -> &[f32] {
        &self.input
    }

    /// The flat `[vocab][dim]` output (context) embedding matrix.
    pub fn output_matrix(&self) -> &[f32] {
        &self.output
    }

    /// The input embedding of a token, or `None` if out of vocabulary.
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        let id = self.vocab.id(token)?;
        let i = id as usize * self.cfg.dim;
        Some(&self.input[i..i + self.cfg.dim])
    }

    /// Quantizes both embedding matrices in place (per-token rows for
    /// int8). Part of the opt-in quantized inference mode; callers
    /// must apply it before any embedding column is computed or
    /// cached.
    pub fn quantize(&mut self, mode: QuantMode) {
        let dim = self.cfg.dim.max(1);
        cati_nn::quant::quantize_dequant_rows(self.input.to_mut(), dim, mode);
        cati_nn::quant::quantize_dequant_rows(self.output.to_mut(), dim, mode);
    }

    /// How many of the two embedding matrices currently read straight
    /// out of a memory-mapped container (diagnostics for the
    /// zero-copy load tests).
    pub fn mapped_param_count(&self) -> usize {
        usize::from(self.input.is_mapped()) + usize::from(self.output.is_mapped())
    }

    /// Cosine similarity between two tokens (0 for OOV).
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        let (Some(va), Some(vb)) = (self.vector(a), self.vector(b)) else {
            return 0.0;
        };
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two token "dialects" that never co-occur: within-dialect tokens
    /// should embed closer together than across dialects.
    fn dialect_corpus() -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(3);
        let a = ["a0", "a1", "a2", "a3"];
        let b = ["b0", "b1", "b2", "b3"];
        let mut out = Vec::new();
        for i in 0..400 {
            let pool: &[&str] = if i % 2 == 0 { &a } else { &b };
            let sent: Vec<String> = (0..12)
                .map(|_| pool[rng.gen_range(0..pool.len())].to_string())
                .collect();
            out.push(sent);
        }
        out
    }

    #[test]
    fn co_occurring_tokens_embed_closer() {
        let model = Word2Vec::train(&dialect_corpus(), W2vConfig::tiny());
        let within = model.similarity("a0", "a1");
        let across = model.similarity("a0", "b1");
        assert!(
            within > across + 0.2,
            "within-dialect {within:.3} should exceed cross-dialect {across:.3}"
        );
    }

    #[test]
    fn vectors_have_configured_dimension() {
        let model = Word2Vec::train(&dialect_corpus(), W2vConfig::tiny());
        assert_eq!(model.vector("a0").unwrap().len(), 8);
        assert!(model.vector("zzz").is_none());
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = dialect_corpus();
        let m1 = Word2Vec::train(&corpus, W2vConfig::tiny());
        let m2 = Word2Vec::train(&corpus, W2vConfig::tiny());
        assert_eq!(m1, m2);
    }

    #[test]
    fn empty_corpus_is_survivable() {
        let model = Word2Vec::train(&[], W2vConfig::tiny());
        assert!(model.vocab.is_empty());
        assert_eq!(model.similarity("x", "y"), 0.0);
    }
}
