//! `cati-embedding` — instruction-token embedding.
//!
//! The paper embeds each generalized token with gensim's Word2Vec
//! (skip-gram, window 5, dimension 32) and concatenates the three
//! token vectors of an instruction into one 96-dim row, making a VUC a
//! 21×96 matrix. This crate reimplements that pipeline: [`vocab`]
//! builds the token vocabulary and the `count^0.75` unigram table,
//! [`word2vec`] trains skip-gram with negative sampling (paper Eq. 1),
//! and [`embedder`] turns instruction windows into channel-major CNN
//! input tensors.
//!
//! # Example
//!
//! ```
//! use cati_embedding::{to_sentences, VucEmbedder, W2vConfig, Word2Vec};
//! use cati_asm::generalize::GenInsn;
//!
//! let windows: Vec<Vec<GenInsn>> = vec![vec![GenInsn::blank(); 5]];
//! let sentences = to_sentences(windows.iter().map(Vec::as_slice));
//! let model = Word2Vec::train(&sentences, W2vConfig::tiny());
//! let embedder = VucEmbedder::new(model);
//! let x = embedder.embed_window(&windows[0]);
//! assert_eq!(x.len(), embedder.embed_dim() * 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod embedder;
pub mod hash;
pub mod vocab;
pub mod word2vec;

pub use embedder::{to_sentences, ColumnView, VucEmbedder};
pub use vocab::Vocab;
pub use word2vec::{W2vConfig, Word2Vec};
