//! The standard observer: records a timestamped event timeline plus a
//! metrics registry, optionally mirroring events to stderr as human
//! text or JSONL, and writes the whole run out as a manifest.

use crate::manifest::unix_ms;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::{Event, Level, Observer};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Live log output format for [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-readable lines.
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses a `--log-format` argument (defaults to `Text`).
    pub fn parse(s: &str) -> LogFormat {
        match s {
            "json" | "jsonl" => LogFormat::Json,
            _ => LogFormat::Text,
        }
    }
}

/// Configuration of a [`Recorder`].
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Mirror events to stderr in this format (`None` = record only).
    pub log: Option<LogFormat>,
    /// Threshold for mirrored events; `Debug` also mirrors span opens
    /// and counter/gauge/histogram updates.
    pub level: Level,
    /// Ask instrumented code for per-batch gradient norms (costs one
    /// extra pass over the gradients per minibatch).
    pub batch_stats: bool,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            log: None,
            level: Level::Info,
            batch_stats: false,
        }
    }
}

/// One recorded timeline entry (everything except registry updates,
/// which aggregate into [`Metrics`] instead).
#[derive(Debug, Clone)]
pub enum Entry {
    /// A closed span.
    Span {
        /// Dot-joined path.
        path: String,
        /// Duration in milliseconds.
        ms: f64,
        /// Thread token ([`crate::thread_token`]) of the closing
        /// thread — spans close on the thread that opened them, so
        /// this identifies the span's thread for trace export.
        tid: u64,
        /// Self-attributed allocated bytes (0 without `alloc-profile`).
        alloc_bytes: u64,
        /// Self-attributed allocation count (0 without `alloc-profile`).
        alloc_count: u64,
    },
    /// One stage-epoch mean loss.
    Loss {
        /// Stage name.
        stage: String,
        /// Zero-based epoch.
        epoch: usize,
        /// Mean per-sample loss.
        loss: f64,
    },
    /// A progress message.
    Message {
        /// Severity.
        level: Level,
        /// Text.
        text: String,
    },
}

/// The standard [`Observer`]: timeline + metrics + optional stderr
/// mirror + manifest writing.
pub struct Recorder {
    t0: Instant,
    started_unix_ms: u64,
    cfg: RecorderConfig,
    metrics: Metrics,
    /// Timestamps are taken under this lock, so entries are strictly
    /// non-decreasing in `ts_ms` — the property `cati report
    /// --validate` checks.
    timeline: Mutex<Vec<(f64, Entry)>>,
}

impl Recorder {
    /// A recorder with the given live-log configuration.
    pub fn new(cfg: RecorderConfig) -> Recorder {
        Recorder {
            t0: Instant::now(),
            started_unix_ms: unix_ms(),
            cfg,
            metrics: Metrics::new(),
            timeline: Mutex::new(Vec::new()),
        }
    }

    /// A recorder that only records (no stderr mirror).
    pub fn silent() -> Recorder {
        Recorder::new(RecorderConfig::default())
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshots the metrics registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Milliseconds since the recorder was created.
    pub fn elapsed_ms(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e3
    }

    /// Total milliseconds per span path, summed over repeats, sorted
    /// by path.
    pub fn span_totals(&self) -> Vec<(String, f64)> {
        let mut totals: BTreeMap<String, f64> = BTreeMap::new();
        for (_, e) in self.timeline.lock().expect("timeline lock").iter() {
            if let Entry::Span { path, ms, .. } = e {
                *totals.entry(path.clone()).or_default() += ms;
            }
        }
        totals.into_iter().collect()
    }

    /// Aggregates all recorded spans into a call tree (see
    /// [`crate::profile`]).
    pub fn span_tree(&self) -> crate::profile::SpanTree {
        let timeline = self.timeline.lock().expect("timeline lock");
        crate::profile::SpanTree::from_observations(timeline.iter().filter_map(|(_, e)| match e {
            Entry::Span {
                path,
                ms,
                alloc_bytes,
                alloc_count,
                ..
            } => Some(crate::profile::SpanObservation {
                path,
                nanos: (ms * 1e6) as u64,
                alloc_bytes: *alloc_bytes,
                alloc_count: *alloc_count,
            }),
            _ => None,
        }))
    }

    /// All `(stage, epoch, loss)` records in arrival order.
    pub fn losses(&self) -> Vec<(String, usize, f64)> {
        self.timeline
            .lock()
            .expect("timeline lock")
            .iter()
            .filter_map(|(_, e)| match e {
                Entry::Loss { stage, epoch, loss } => Some((stage.clone(), *epoch, *loss)),
                _ => None,
            })
            .collect()
    }

    fn record(&self, entry: Entry) {
        let mut timeline = self.timeline.lock().expect("timeline lock");
        // Timestamp under the lock: file order == time order.
        let ts = self.elapsed_ms();
        self.mirror(ts, &entry);
        timeline.push((ts, entry));
    }

    fn mirror(&self, ts: f64, entry: &Entry) {
        let Some(format) = self.cfg.log else { return };
        let line = match entry {
            Entry::Message { level, text } => {
                if *level > self.cfg.level {
                    return;
                }
                match format {
                    LogFormat::Text => format!("[{ts:10.1}ms] {}: {text}", level.name()),
                    LogFormat::Json => serde_json::to_string(&json!({
                        "ts_ms": ts, "event": "message", "level": level.name(), "text": text,
                    }))
                    .unwrap_or_default(),
                }
            }
            Entry::Span { path, ms, .. } => {
                if self.cfg.level < Level::Info {
                    return;
                }
                match format {
                    LogFormat::Text => format!("[{ts:10.1}ms] span {path} {ms:.2}ms"),
                    LogFormat::Json => serde_json::to_string(&json!({
                        "ts_ms": ts, "event": "span", "path": path, "ms": ms,
                    }))
                    .unwrap_or_default(),
                }
            }
            Entry::Loss { stage, epoch, loss } => {
                if self.cfg.level < Level::Info {
                    return;
                }
                match format {
                    LogFormat::Text => {
                        format!("[{ts:10.1}ms] loss {stage} epoch {epoch} {loss:.4}")
                    }
                    LogFormat::Json => serde_json::to_string(&json!({
                        "ts_ms": ts, "event": "loss", "stage": stage,
                        "epoch": epoch, "loss": loss,
                    }))
                    .unwrap_or_default(),
                }
            }
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }

    /// The full run as manifest JSONL: a `meta` line (the caller's
    /// metadata plus timing context), the timeline, a final `metrics`
    /// snapshot, and an `end` line.
    pub fn manifest_jsonl(&self, meta: &Value) -> String {
        let mut out = String::new();
        let mut meta_line = match meta {
            Value::Object(m) => m.clone(),
            other => {
                let mut m = serde_json::Map::new();
                m.insert("meta".to_string(), other.clone());
                m
            }
        };
        meta_line.insert("record".to_string(), json!("meta"));
        meta_line.insert("ts_ms".to_string(), json!(0.0f64));
        meta_line.insert("started_unix_ms".to_string(), json!(self.started_unix_ms));
        out.push_str(&serde_json::to_string(&Value::Object(meta_line)).unwrap_or_default());
        out.push('\n');
        for (ts, entry) in self.timeline.lock().expect("timeline lock").iter() {
            let v = match entry {
                Entry::Span {
                    path,
                    ms,
                    tid,
                    alloc_bytes,
                    alloc_count,
                } => {
                    let mut v = json!({
                        "record": "span", "ts_ms": *ts, "path": path, "ms": *ms,
                        "tid": *tid,
                    });
                    if *alloc_count > 0 {
                        if let Value::Object(m) = &mut v {
                            m.insert("alloc_bytes".to_string(), json!(*alloc_bytes));
                            m.insert("alloc_count".to_string(), json!(*alloc_count));
                        }
                    }
                    v
                }
                Entry::Loss { stage, epoch, loss } => json!({
                    "record": "loss", "ts_ms": *ts, "stage": stage,
                    "epoch": *epoch, "loss": *loss,
                }),
                Entry::Message { level, text } => json!({
                    "record": "message", "ts_ms": *ts, "level": level.name(), "text": text,
                }),
            };
            out.push_str(&serde_json::to_string(&v).unwrap_or_default());
            out.push('\n');
        }
        let end_ts = self.elapsed_ms();
        let snapshot = serde_json::to_value(&self.snapshot()).unwrap_or(Value::Null);
        out.push_str(
            &serde_json::to_string(&json!({
                "record": "metrics", "ts_ms": end_ts, "snapshot": snapshot,
            }))
            .unwrap_or_default(),
        );
        out.push('\n');
        out.push_str(
            &serde_json::to_string(&json!({
                "record": "end", "ts_ms": end_ts, "wall_ms": end_ts,
            }))
            .unwrap_or_default(),
        );
        out.push('\n');
        out
    }

    /// Writes the manifest to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, annotated with the path.
    pub fn write_manifest(&self, path: impl AsRef<Path>, meta: &Value) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!("create manifest dir {}: {e}", parent.display()),
                    )
                })?;
            }
        }
        std::fs::write(path, self.manifest_jsonl(meta)).map_err(|e| {
            std::io::Error::new(e.kind(), format!("write manifest {}: {e}", path.display()))
        })
    }
}

impl Observer for Recorder {
    fn event(&self, event: &Event<'_>) {
        match *event {
            Event::SpanOpen { .. } => {}
            Event::SpanClose {
                path,
                nanos,
                alloc_bytes,
                alloc_count,
            } => {
                let ms = nanos as f64 / 1e6;
                self.metrics.observe("span_ms", ms);
                if alloc_count > 0 {
                    self.metrics.inc("profile.alloc_bytes", alloc_bytes);
                    self.metrics.inc("profile.alloc_count", alloc_count);
                }
                self.record(Entry::Span {
                    path: path.to_string(),
                    ms,
                    // `event` runs on the span's own thread.
                    tid: crate::thread_token(),
                    alloc_bytes,
                    alloc_count,
                });
            }
            Event::Counter { name, delta } => self.metrics.inc(name, delta),
            Event::Gauge { name, value } => self.metrics.set_gauge(name, value),
            Event::RegisterHistogram { name, bounds } => {
                self.metrics.register_histogram(name, bounds);
            }
            Event::Observe { name, value } => self.metrics.observe(name, value),
            Event::EpochLoss { stage, epoch, loss } => {
                self.metrics.observe("train.epoch_loss", loss);
                self.metrics
                    .set_gauge(&format!("train.{stage}.final_loss"), loss);
                self.record(Entry::Loss {
                    stage: stage.to_string(),
                    epoch,
                    loss,
                });
            }
            Event::GradNorm { norm, .. } => self.metrics.observe("train.grad_norm", norm),
            Event::Message { level, text } => self.record(Entry::Message {
                level,
                text: text.to_string(),
            }),
        }
    }

    fn wants_batch_stats(&self) -> bool {
        self.cfg.batch_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_timestamps_are_monotonic() {
        let r = Recorder::silent();
        for i in 0..10 {
            r.event(&Event::Message {
                level: Level::Info,
                text: &format!("m{i}"),
            });
        }
        let timeline = r.timeline.lock().unwrap();
        assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn span_totals_aggregate_repeats() {
        let r = Recorder::silent();
        r.event(&Event::SpanClose {
            path: "a",
            nanos: 2_000_000,
            alloc_bytes: 0,
            alloc_count: 0,
        });
        r.event(&Event::SpanClose {
            path: "a",
            nanos: 3_000_000,
            alloc_bytes: 0,
            alloc_count: 0,
        });
        let totals = r.span_totals();
        assert_eq!(totals.len(), 1);
        assert!((totals[0].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn span_tree_aggregates_timeline_with_thread_identity() {
        let r = Recorder::silent();
        r.event(&Event::SpanClose {
            path: "run.step",
            nanos: 1_000_000,
            alloc_bytes: 64,
            alloc_count: 2,
        });
        r.event(&Event::SpanClose {
            path: "run",
            nanos: 4_000_000,
            alloc_bytes: 0,
            alloc_count: 0,
        });
        let tree = r.span_tree();
        let run = tree.find("run").expect("run node");
        assert_eq!(run.calls, 1);
        assert_eq!(run.alloc_bytes, 64, "subtree alloc rolls up");
        let step = tree.find("run.step").expect("step node");
        assert_eq!(step.self_alloc_count, 2);
        // Every span line in the manifest carries the recording
        // thread's token.
        let jsonl = r.manifest_jsonl(&json!({"name": "t"}));
        let span_line = jsonl
            .lines()
            .filter_map(|l| serde_json::from_str::<Value>(l).ok())
            .find(|v| v.get("record").and_then(Value::as_str) == Some("span"))
            .expect("span line");
        assert!(span_line.get("tid").and_then(Value::as_u64).unwrap_or(0) >= 1);
    }
}
