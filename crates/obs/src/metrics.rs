//! The metrics registry: counters, gauges, and fixed-bucket
//! histograms, all lock-light and safe to update from rayon-shim
//! worker threads.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default histogram bounds: log-spaced, wide enough for
/// milliseconds, losses, and norms alike.
pub const DEFAULT_BUCKETS: [f64; 12] = [
    0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 50.0, 250.0, 1000.0,
];

/// Bounds suited to probabilities / confidences in `[0, 1]`.
pub const UNIT_BUCKETS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// An `f64` cell updated via compare-and-swap on its bit pattern.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> AtomicF64 {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram. Bounds are ascending inclusive upper
/// edges; values above the last bound land in an overflow bucket and
/// non-finite values (NaN, ±inf) in a dedicated `invalid` bucket —
/// a NaN loss must be *visible*, never a panic.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    invalid: AtomicU64,
    sum: AtomicF64,
    total: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            invalid: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            self.invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let i = self.bounds.partition_point(|b| v > *b);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            invalid: self.invalid.load(Ordering::Relaxed),
            count: self.total.load(Ordering::Relaxed),
            sum: self.sum.get(),
        }
    }
}

/// Serializable state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Ascending inclusive upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (last = overflow).
    pub counts: Vec<u64>,
    /// Non-finite observations (NaN, ±inf).
    pub invalid: u64,
    /// Total finite observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// distribution by linear interpolation within the bucket that
    /// contains the target rank (the estimator Prometheus'
    /// `histogram_quantile` uses):
    ///
    /// - the first bucket interpolates from a lower edge of 0 when
    ///   its bound is positive, else from the bound itself;
    /// - the overflow bucket has no upper edge, so any rank landing
    ///   there reports the last finite bound (a lower bound on the
    ///   true quantile);
    /// - `None` when the histogram is empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || self.bounds.is_empty() {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: unbounded above.
                    return self.bounds.last().copied();
                }
                let upper = self.bounds[i];
                let lower = if i == 0 {
                    if upper > 0.0 {
                        0.0
                    } else {
                        upper
                    }
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
            cum = next;
        }
        self.bounds.last().copied()
    }

    /// `(p50, p95, p99)` quantile estimates (`None` when empty).
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.5)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// Serializable state of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registry name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Serializable state of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registry name.
    pub name: String,
    /// Last written value.
    pub value: f64,
}

/// A point-in-time copy of a whole [`Metrics`] registry, sorted by
/// name (so snapshots of identical states are byte-identical).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// The registry: named counters, gauges, and histograms created on
/// first use. Name lookups take a read lock; updates are atomic.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicF64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the named counter (created at 0 on first use).
    pub fn inc(&self, name: &str, delta: u64) {
        if let Some(c) = self.counters.read().expect("counters lock").get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .expect("counters lock")
            .entry(name.to_string())
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the named gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(g) = self.gauges.read().expect("gauges lock").get(name) {
            g.set(value);
            return;
        }
        self.gauges
            .write()
            .expect("gauges lock")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicF64::new(value)))
            .set(value);
    }

    /// Registers a histogram with explicit bounds. Idempotent: the
    /// first registration wins, later calls are no-ops.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        if self
            .histograms
            .read()
            .expect("histograms lock")
            .contains_key(name)
        {
            return;
        }
        self.histograms
            .write()
            .expect("histograms lock")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)));
    }

    /// Records one observation into the named histogram, creating it
    /// with [`DEFAULT_BUCKETS`] if unregistered.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(h) = self.histograms.read().expect("histograms lock").get(name) {
            h.record(value);
            return;
        }
        let h = Arc::clone(
            self.histograms
                .write()
                .expect("histograms lock")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(&DEFAULT_BUCKETS))),
        );
        h.record(value);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("counters lock")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshots the whole registry, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("counters lock")
                .iter()
                .map(|(name, c)| CounterSnapshot {
                    name: name.clone(),
                    value: c.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("gauges lock")
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("histograms lock")
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let m = Metrics::new();
        m.inc("b", 2);
        m.inc("a", 1);
        m.inc("b", 3);
        let snap = m.snapshot();
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.counter("b"), Some(5));
        assert_eq!(snap.counters[0].name, "a");
    }

    #[test]
    fn histogram_buckets_values_inclusively() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 4.0, 9.0] {
            h.record(v);
        }
        let s = h.snapshot("t");
        // ≤1: {0.5, 1.0}; ≤2: {1.5, 2.0}; ≤4: {4.0}; overflow: {9.0}.
        assert_eq!(s.counts, vec![2, 2, 1, 1]);
        assert_eq!(s.count, 6);
        assert_eq!(s.invalid, 0);
    }

    #[test]
    fn non_finite_observations_land_in_invalid() {
        let h = Histogram::new(&DEFAULT_BUCKETS);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(1.0);
        let s = h.snapshot("t");
        assert_eq!(s.invalid, 3);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 1.0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let m = Metrics::new();
        m.set_gauge("g", 1.5);
        m.set_gauge("g", -2.5);
        assert_eq!(m.snapshot().gauge("g"), Some(-2.5));
    }

    #[test]
    fn quantiles_match_exact_percentiles_of_a_uniform_distribution() {
        // 1..=100 into decade buckets: every bucket holds exactly 10
        // observations, so linear interpolation is *exact* at any
        // quantile whose rank lands on a bucket-fraction boundary.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let h = Histogram::new(&bounds);
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.snapshot("u");
        assert!((s.quantile(0.5).unwrap() - 50.0).abs() < 1e-9);
        assert!((s.quantile(0.95).unwrap() - 95.0).abs() < 1e-9);
        assert!((s.quantile(0.99).unwrap() - 99.0).abs() < 1e-9);
        assert!((s.quantile(1.0).unwrap() - 100.0).abs() < 1e-9);
        let (p50, p95, p99) = s.percentiles().unwrap();
        assert!((p50 - 50.0).abs() < 1e-9);
        assert!((p95 - 95.0).abs() < 1e-9);
        assert!((p99 - 99.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_a_skewed_bucket() {
        // 3 observations ≤ 1.0 and 1 observation in (1.0, 2.0]:
        // p50's rank (2.0 of 4) is two-thirds into the first bucket.
        let h = Histogram::new(&[1.0, 2.0]);
        for v in [0.2, 0.4, 0.9, 1.5] {
            h.record(v);
        }
        let s = h.snapshot("skew");
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 2.0 / 3.0).abs() < 1e-9, "got {p50}");
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.snapshot("e").quantile(0.5), None, "empty histogram");
        h.record(5.0);
        h.record(7.0);
        let s = h.snapshot("e");
        assert_eq!(
            s.quantile(0.99),
            Some(1.0),
            "overflow ranks clamp to the last finite bound"
        );
        assert_eq!(s.quantile(-0.1), None);
        assert_eq!(s.quantile(1.1), None);
    }

    #[test]
    fn histogram_registration_is_first_wins() {
        let m = Metrics::new();
        m.register_histogram("h", &[1.0]);
        m.register_histogram("h", &[5.0, 10.0]);
        m.observe("h", 0.5);
        let s = m.snapshot();
        assert_eq!(s.histogram("h").unwrap().bounds, vec![1.0]);
    }
}
