//! Bench records and the perf-regression observatory.
//!
//! `exp_speed` (and the serve benchmark inside it) write a rich
//! `BENCH_speed.json`; this module defines the *flat* record appended
//! to `results/bench_history.jsonl` (one JSON object per line,
//! git-rev-stamped) and the diff logic behind
//! `cati report CURRENT --bench-diff BASELINE`: each key metric has a
//! direction (throughput up = good, latency up = bad) and a
//! regression is a move in the bad direction past a configurable
//! noise threshold. Missing metrics are reported but are not
//! regressions — small CI runs legitimately skip sections — while a
//! record carrying *none* of the key metrics is malformed and errors.

use serde_json::{Map, Value};
use std::fmt::Write as _;
use std::path::Path;

/// Whether a bigger value is an improvement or a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style: bigger is better.
    HigherIsBetter,
    /// Latency-style: smaller is better.
    LowerIsBetter,
}

/// The metrics `--bench-diff` compares, with their directions.
pub const KEY_METRICS: [(&str, Direction); 5] = [
    ("infer_vucs_per_s", Direction::HigherIsBetter),
    ("embed_rows_per_s", Direction::HigherIsBetter),
    ("serve_reqs_per_s", Direction::HigherIsBetter),
    ("serve_p99_ms", Direction::LowerIsBetter),
    ("model_load_ms", Direction::LowerIsBetter),
];

/// One bench record: identification plus flat numeric metrics.
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    /// Git revision the record was produced at, if stamped.
    pub git_rev: Option<String>,
    /// Unix milliseconds the record was produced at, if stamped.
    pub unix_ms: Option<u64>,
    /// Benchmark scale name, if present.
    pub scale: Option<String>,
    /// Flat numeric metrics (key-metric names plus anything else
    /// numeric at the top level).
    pub values: Map,
}

impl BenchRecord {
    /// Extracts a record from a parsed JSON object. Top-level numeric
    /// fields are taken directly; key metrics not found there are
    /// searched for in the *last* entry of a `runs` array (the
    /// `BENCH_speed.json` layout, whose last run is the
    /// all-cores one).
    pub fn from_value(v: &Value) -> BenchRecord {
        let mut rec = BenchRecord {
            git_rev: v["git_rev"].as_str().map(str::to_string),
            unix_ms: v["unix_ms"].as_u64(),
            scale: v["scale"].as_str().map(str::to_string),
            ..BenchRecord::default()
        };
        if let Value::Object(obj) = v {
            for (k, val) in obj.iter() {
                if val.as_f64().is_some() {
                    rec.values.insert(k.clone(), val.clone());
                }
            }
        }
        let last_run = v["runs"].as_array().and_then(|runs| runs.last());
        for (name, _) in KEY_METRICS {
            if rec.values.get(name).is_some() {
                continue;
            }
            // Key metrics live either in the last run entry or in
            // nested sections (`serve`, `model`) of the rich report.
            if let Some(found) = last_run
                .and_then(|r| r[name].as_f64())
                .or_else(|| find_numeric(v, name))
            {
                rec.values.insert(name.to_string(), Value::from(found));
            }
        }
        rec
    }

    /// Parses a record from file text: either one JSON object, or
    /// JSONL history (the *last* non-empty line is taken).
    ///
    /// # Errors
    ///
    /// Fails on unparseable JSON or a record carrying none of the
    /// [`KEY_METRICS`].
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        let v: Value = serde_json::from_str(text.trim()).or_else(|whole_err| {
            text.lines()
                .rev()
                .find(|l| !l.trim().is_empty())
                .ok_or_else(|| format!("empty bench record: {whole_err}"))
                .and_then(|line| {
                    serde_json::from_str(line.trim())
                        .map_err(|e| format!("bench record is not JSON: {e}"))
                })
        })?;
        if !matches!(v, Value::Object(_)) {
            return Err("bench record is not a JSON object".to_string());
        }
        let rec = BenchRecord::from_value(&v);
        if !KEY_METRICS.iter().any(|(n, _)| rec.metric(n).is_some()) {
            return Err(format!(
                "bench record has none of the key metrics ({})",
                KEY_METRICS.map(|(n, _)| n).join(", ")
            ));
        }
        Ok(rec)
    }

    /// Reads and parses a record file.
    ///
    /// # Errors
    ///
    /// As [`BenchRecord::parse`], plus I/O failures.
    pub fn load(path: impl AsRef<Path>) -> Result<BenchRecord, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read bench record {}: {e}", path.display()))?;
        BenchRecord::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// A metric by name (finite values only).
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.values
            .get(name)
            .and_then(Value::as_f64)
            .filter(|v| v.is_finite())
    }
}

/// Recursively finds the first finite numeric field named `name`.
fn find_numeric(v: &Value, name: &str) -> Option<f64> {
    match v {
        Value::Object(obj) => {
            if let Some(x) = obj.get(name).and_then(Value::as_f64) {
                if x.is_finite() {
                    return Some(x);
                }
            }
            obj.iter().find_map(|(_, child)| find_numeric(child, name))
        }
        Value::Array(items) => items.iter().find_map(|child| find_numeric(child, name)),
        _ => None,
    }
}

/// One compared metric in a [`BenchDiff`].
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name.
    pub name: &'static str,
    /// Direction of goodness.
    pub direction: Direction,
    /// Baseline value, if present.
    pub base: Option<f64>,
    /// Current value, if present.
    pub current: Option<f64>,
    /// Signed percent change current-vs-base (`None` when either side
    /// is missing or base is 0).
    pub delta_pct: Option<f64>,
    /// Whether the move is in the bad direction past the threshold.
    pub regressed: bool,
}

/// The result of comparing two bench records.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Noise threshold in percent.
    pub threshold_pct: f64,
    /// One row per key metric.
    pub rows: Vec<MetricDelta>,
}

impl BenchDiff {
    /// Compares `current` against `base` across [`KEY_METRICS`] with
    /// a noise threshold in percent.
    pub fn compare(base: &BenchRecord, current: &BenchRecord, threshold_pct: f64) -> BenchDiff {
        let threshold_pct = if threshold_pct.is_finite() && threshold_pct >= 0.0 {
            threshold_pct
        } else {
            10.0
        };
        let rows = KEY_METRICS
            .iter()
            .map(|&(name, direction)| {
                let b = base.metric(name);
                let c = current.metric(name);
                let delta_pct = match (b, c) {
                    (Some(b), Some(c)) if b != 0.0 => Some((c - b) / b * 100.0),
                    _ => None,
                };
                let regressed = delta_pct.is_some_and(|d| match direction {
                    Direction::HigherIsBetter => d < -threshold_pct,
                    Direction::LowerIsBetter => d > threshold_pct,
                });
                MetricDelta {
                    name,
                    direction,
                    base: b,
                    current: c,
                    delta_pct,
                    regressed,
                }
            })
            .collect();
        BenchDiff {
            threshold_pct,
            rows,
        }
    }

    /// Names of regressed metrics.
    pub fn regressions(&self) -> Vec<&'static str> {
        self.rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.name)
            .collect()
    }

    /// Human-readable table.
    pub fn render(&self, base: &BenchRecord, current: &BenchRecord) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench diff (threshold ±{:.1}%): {} -> {}",
            self.threshold_pct,
            base.git_rev.as_deref().map_or("?", shorten),
            current.git_rev.as_deref().map_or("?", shorten),
        );
        for row in &self.rows {
            let arrow = match row.direction {
                Direction::HigherIsBetter => "higher=better",
                Direction::LowerIsBetter => "lower=better",
            };
            let fmt = |v: Option<f64>| v.map_or("(absent)".to_string(), |x| format!("{x:.3}"));
            let verdict = if row.regressed {
                "REGRESSED"
            } else if row.delta_pct.is_none() {
                "skipped"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {name:<18} {b:>14} -> {c:>14}  {d:>9}  [{arrow}] {verdict}",
                name = row.name,
                b = fmt(row.base),
                c = fmt(row.current),
                d = row
                    .delta_pct
                    .map_or("n/a".to_string(), |d| format!("{d:+.1}%")),
            );
        }
        let regressed = self.regressions();
        if regressed.is_empty() {
            let _ = writeln!(out, "  no regressions");
        } else {
            let _ = writeln!(out, "  REGRESSIONS: {}", regressed.join(", "));
        }
        out
    }
}

/// First 12 characters of a git revision for display.
fn shorten(rev: &str) -> &str {
    &rev[..rev.len().min(12)]
}

/// Appends one JSON record as a line of `path`, creating parent
/// directories.
///
/// The record is serialized *before* the file is opened: a
/// serialization failure propagates as an error and appends nothing,
/// instead of the old behaviour of swallowing it
/// (`unwrap_or_default`) and corrupting the history with a blank
/// line. A serialization that somehow produces a blank or multi-line
/// string is rejected the same way — every line of a history file is
/// one complete JSON record.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn append_history(path: impl AsRef<Path>, record: &Value) -> std::io::Result<()> {
    use std::io::Write as _;
    let line = serde_json::to_string(record).map_err(std::io::Error::other)?;
    if line.trim().is_empty() || line.contains('\n') {
        return Err(std::io::Error::other(format!(
            "bench record serialized to an invalid history line: {line:?}"
        )));
    }
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn record(vals: &[(&str, f64)]) -> BenchRecord {
        let mut obj = Map::new();
        for (k, v) in vals {
            obj.insert(k.to_string(), Value::from(*v));
        }
        BenchRecord::from_value(&Value::Object(obj))
    }

    const ALL: [(&str, f64); 5] = [
        ("infer_vucs_per_s", 1000.0),
        ("embed_rows_per_s", 5000.0),
        ("serve_reqs_per_s", 200.0),
        ("serve_p99_ms", 40.0),
        ("model_load_ms", 3.0),
    ];

    #[test]
    fn identical_records_have_no_regressions() {
        let r = record(&ALL);
        let diff = BenchDiff::compare(&r, &r, 10.0);
        assert!(diff.regressions().is_empty());
        assert!(diff.rows.iter().all(|row| row.delta_pct == Some(0.0)));
    }

    #[test]
    fn fifty_percent_throughput_drop_regresses() {
        let base = record(&ALL);
        let mut worse = ALL;
        worse[0].1 = 500.0; // infer_vucs_per_s halved
        let cur = record(&worse);
        let diff = BenchDiff::compare(&base, &cur, 10.0);
        assert_eq!(diff.regressions(), vec!["infer_vucs_per_s"]);
        // A generous threshold swallows the same drop.
        assert!(BenchDiff::compare(&base, &cur, 75.0)
            .regressions()
            .is_empty());
    }

    #[test]
    fn latency_direction_is_inverted() {
        let base = record(&ALL);
        let mut worse = ALL;
        worse[3].1 = 80.0; // serve_p99_ms doubled = bad
        let diff = BenchDiff::compare(&base, &record(&worse), 10.0);
        assert_eq!(diff.regressions(), vec!["serve_p99_ms"]);
        let mut better = ALL;
        better[3].1 = 10.0; // p99 improved = fine
        assert!(BenchDiff::compare(&base, &record(&better), 10.0)
            .regressions()
            .is_empty());
    }

    #[test]
    fn missing_metrics_skip_instead_of_regressing() {
        let base = record(&ALL);
        let cur = record(&ALL[..2]); // serve metrics absent
        let diff = BenchDiff::compare(&base, &cur, 10.0);
        assert!(diff.regressions().is_empty());
        assert!(diff.render(&base, &cur).contains("skipped"));
    }

    #[test]
    fn parse_accepts_object_and_jsonl_and_rejects_garbage() {
        let one = json!({"git_rev": "abc", "infer_vucs_per_s": 10.0});
        let rec = BenchRecord::parse(&serde_json::to_string(&one).unwrap()).unwrap();
        assert_eq!(rec.metric("infer_vucs_per_s"), Some(10.0));
        assert_eq!(rec.git_rev.as_deref(), Some("abc"));

        let jsonl = format!(
            "{}\n{}\n",
            serde_json::to_string(&json!({"infer_vucs_per_s": 1.0})).unwrap(),
            serde_json::to_string(&json!({"infer_vucs_per_s": 2.0})).unwrap(),
        );
        let last = BenchRecord::parse(&jsonl).unwrap();
        assert_eq!(last.metric("infer_vucs_per_s"), Some(2.0), "last line wins");

        assert!(BenchRecord::parse("not json").is_err());
        assert!(
            BenchRecord::parse("{\"unrelated\": 1.0}").is_err(),
            "no key metrics = malformed"
        );
    }

    #[test]
    fn jsonl_parsing_skips_blank_lines() {
        // A history that suffered the old blank-line corruption (or
        // hand edits) still parses to the last *real* record.
        let jsonl = format!(
            "{}\n\n   \n{}\n\n",
            serde_json::to_string(&json!({"infer_vucs_per_s": 1.0})).unwrap(),
            serde_json::to_string(&json!({"infer_vucs_per_s": 2.0})).unwrap(),
        );
        let rec = BenchRecord::parse(&jsonl).unwrap();
        assert_eq!(rec.metric("infer_vucs_per_s"), Some(2.0));
        // All-blank input is an empty record, not a panic.
        assert!(BenchRecord::parse("\n  \n\n").is_err());
    }

    #[test]
    fn append_history_never_writes_blank_lines() {
        let dir = std::env::temp_dir().join(format!(
            "cati-bench-append-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("history.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        append_history(&path, &json!({"infer_vucs_per_s": 1.0})).unwrap();
        append_history(&path, &json!({"infer_vucs_per_s": 2.0})).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(
            text.lines().all(|l| !l.trim().is_empty()),
            "history must contain no blank lines: {text:?}"
        );
        let rec = BenchRecord::parse(&text).unwrap();
        assert_eq!(rec.metric("infer_vucs_per_s"), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_metrics_are_found_in_nested_rich_reports() {
        let rich = json!({
            "git_rev": "deadbeef",
            "runs": json!([
                json!({"threads": 1, "infer_vucs_per_s": 100.0}),
                json!({"threads": 8, "infer_vucs_per_s": 640.0, "embed_rows_per_s": 9000.0}),
            ]),
            "serve": json!({"serve_reqs_per_s": 300.0, "serve_p99_ms": 12.5}),
            "model": json!({"model_load_ms": 2.25}),
        });
        let rec = BenchRecord::from_value(&rich);
        assert_eq!(rec.metric("infer_vucs_per_s"), Some(640.0), "last run wins");
        assert_eq!(rec.metric("embed_rows_per_s"), Some(9000.0));
        assert_eq!(rec.metric("serve_reqs_per_s"), Some(300.0));
        assert_eq!(rec.metric("serve_p99_ms"), Some(12.5));
        assert_eq!(rec.metric("model_load_ms"), Some(2.25));
    }
}
