//! Chrome `trace_event` export: renders a parsed [`Manifest`] into
//! JSON loadable by Perfetto / `chrome://tracing`.
//!
//! Each manifest span becomes one complete (`"ph":"X"`) event with
//! microsecond timestamps. The manifest records span *closes*
//! (`ts_ms` = close time, `ms` = duration), so nominally
//! `begin = ts_ms - ms` — but the two clocks involved (the recorder's
//! elapsed-ms timestamps, taken under the timeline lock, and each
//! `SpanGuard`'s own `Instant`) can disagree by scheduling jitter,
//! which would make a child poke a few microseconds outside its
//! parent and render as overlap. The exporter therefore *clamps*
//! children into their parents, reconstructing per-thread nesting
//! from the close order: within one thread spans close inner-first,
//! so walking the records in reverse close order visits parents
//! before their children, and lexical path-prefix parenthood
//! (`a.b` is inside `a`) identifies the enclosing open span exactly.
//! The output is strictly nested per thread *by construction* — the
//! property [`validate`] checks and tests assert.
//!
//! Messages are included as instant (`"ph":"i"`) events so warnings
//! line up with the spans they interrupted.

use crate::manifest::Manifest;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Renders a manifest as a Chrome `trace_event` JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn render(manifest: &Manifest) -> String {
    serde_json::to_string(&to_value(manifest)).unwrap_or_else(|_| "{}".to_string())
}

/// [`render`], but returning the JSON tree.
pub fn to_value(manifest: &Manifest) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(manifest.spans.len() + 8);
    let run_name = manifest.meta["name"].as_str().unwrap_or("cati");
    events.push(json!({
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": json!({"name": run_name}),
    }));

    // Group spans by thread, preserving file (= close) order.
    let mut by_tid: BTreeMap<u64, Vec<&crate::manifest::SpanLine>> = BTreeMap::new();
    for s in &manifest.spans {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for (&tid, spans) in &by_tid {
        events.push(json!({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": json!({"name": format!("thread-{tid}")}),
        }));
        // Reverse close order: parents (which close after their
        // children) come first, so each span can be clamped into its
        // nearest open lexical ancestor.
        let mut intervals: Vec<(f64, f64, &crate::manifest::SpanLine)> =
            Vec::with_capacity(spans.len());
        let mut open: Vec<(String, f64, f64)> = Vec::new();
        for s in spans.iter().rev() {
            let mut end = s.ts_ms.max(0.0);
            let mut begin = (s.ts_ms - s.ms).max(0.0);
            while let Some((ppath, pb, pe)) = open.last() {
                if is_strict_prefix(ppath, &s.path) {
                    begin = begin.max(*pb);
                    end = end.min(*pe);
                    if begin > end {
                        begin = end;
                    }
                    break;
                }
                open.pop();
            }
            open.push((s.path.clone(), begin, end));
            intervals.push((begin, end, s));
        }
        intervals.reverse();
        for (begin, end, s) in intervals {
            let mut args = serde_json::Map::new();
            args.insert("path".to_string(), json!(s.path));
            if s.alloc_count > 0 {
                args.insert("alloc_bytes".to_string(), json!(s.alloc_bytes));
                args.insert("alloc_count".to_string(), json!(s.alloc_count));
            }
            events.push(json!({
                "name": s.path,
                "cat": "span",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": begin * 1e3,
                "dur": (end - begin) * 1e3,
                "args": Value::Object(args),
            }));
        }
    }
    for (ts_ms, level, text) in &manifest.messages {
        events.push(json!({
            "name": text,
            "cat": format!("message.{level}"),
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": 0,
            "ts": ts_ms * 1e3,
        }));
    }
    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    })
}

/// Is `parent` a strict dot-path prefix of `child` (`a` of `a.b`)?
fn is_strict_prefix(parent: &str, child: &str) -> bool {
    child.len() > parent.len()
        && child.starts_with(parent)
        && child.as_bytes()[parent.len()] == b'.'
}

/// Checks that `text` is well-formed Chrome trace JSON: parses, has a
/// `traceEvents` array, every event carries `name`/`ph`/`pid`/`tid`,
/// every `"X"` event has finite non-negative `ts`/`dur`, and within
/// each thread complete events are strictly nested (no partial
/// overlap).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("trace is not JSON: {e}"))?;
    let events = v["traceEvents"]
        .as_array()
        .ok_or("missing traceEvents array")?;
    let mut by_tid: BTreeMap<u64, Vec<(f64, f64, String)>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e["ph"]
            .as_str()
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if e["name"].as_str().is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if e["pid"].as_u64().is_none() || e["tid"].as_u64().is_none() {
            return Err(format!("event {i}: missing pid/tid"));
        }
        if ph != "X" {
            continue;
        }
        let ts = e["ts"]
            .as_f64()
            .ok_or_else(|| format!("event {i}: X without ts"))?;
        let dur = e["dur"]
            .as_f64()
            .ok_or_else(|| format!("event {i}: X without dur"))?;
        if !ts.is_finite() || !dur.is_finite() || ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i}: bad ts/dur ({ts}, {dur})"));
        }
        by_tid
            .entry(e["tid"].as_u64().unwrap_or(0))
            .or_default()
            .push((ts, ts + dur, e["name"].as_str().unwrap_or("?").to_string()));
    }
    for (tid, mut iv) in by_tid {
        // Sort by begin ascending, longest first on ties, and check
        // the stack property: each event either nests inside the top
        // of the stack or begins after it ends.
        iv.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut stack: Vec<(f64, f64, String)> = Vec::new();
        for (b, e, name) in iv {
            while let Some((_, se, _)) = stack.last() {
                if b >= *se {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some((_, se, sname)) = stack.last() {
                if e > *se {
                    return Err(format!(
                        "tid {tid}: `{name}` [{b}, {e}] partially overlaps `{sname}` (ends {se})"
                    ));
                }
            }
            stack.push((b, e, name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_of(lines: &str) -> Manifest {
        let text = format!("{{\"record\":\"meta\",\"ts_ms\":0.0,\"name\":\"t\"}}\n{lines}");
        Manifest::parse(&text).expect("test manifest parses")
    }

    #[test]
    fn spans_become_complete_events_matching_the_manifest() {
        let m = manifest_of(concat!(
            "{\"record\":\"span\",\"ts_ms\":4.0,\"path\":\"a.b\",\"ms\":3.0,\"tid\":1}\n",
            "{\"record\":\"span\",\"ts_ms\":5.0,\"path\":\"a\",\"ms\":5.0,\"tid\":1}\n",
        ));
        let text = render(&m);
        validate(&text).expect("trace validates");
        let v: Value = serde_json::from_str(&text).unwrap();
        let names: Vec<&str> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X")
            .map(|e| e["name"].as_str().unwrap())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"a") && names.contains(&"a.b"));
    }

    #[test]
    fn clock_jitter_is_clamped_into_strict_nesting() {
        // Child [0.9, 4.1] pokes out of parent [1.0, 4.0] on both
        // sides — the exporter must clamp it inside.
        let m = manifest_of(concat!(
            "{\"record\":\"span\",\"ts_ms\":4.1,\"path\":\"p.c\",\"ms\":3.2,\"tid\":7}\n",
            "{\"record\":\"span\",\"ts_ms\":4.0,\"path\":\"p\",\"ms\":3.0,\"tid\":7}\n",
        ));
        let text = render(&m);
        validate(&text).expect("clamped trace validates");
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let child = events.iter().find(|e| e["name"] == "p.c").unwrap();
        let parent = events.iter().find(|e| e["name"] == "p").unwrap();
        let (cb, cd) = (
            child["ts"].as_f64().unwrap(),
            child["dur"].as_f64().unwrap(),
        );
        let (pb, pd) = (
            parent["ts"].as_f64().unwrap(),
            parent["dur"].as_f64().unwrap(),
        );
        assert!(cb >= pb && cb + cd <= pb + pd, "child clamped into parent");
    }

    #[test]
    fn sibling_spans_on_one_thread_do_not_nest() {
        let m = manifest_of(concat!(
            "{\"record\":\"span\",\"ts_ms\":2.0,\"path\":\"x.s1\",\"ms\":2.0,\"tid\":3}\n",
            "{\"record\":\"span\",\"ts_ms\":5.0,\"path\":\"x.s2\",\"ms\":2.5,\"tid\":3}\n",
            "{\"record\":\"span\",\"ts_ms\":5.5,\"path\":\"x\",\"ms\":5.5,\"tid\":3}\n",
        ));
        validate(&render(&m)).expect("siblings validate");
    }

    #[test]
    fn threads_are_independent_lanes() {
        let m = manifest_of(concat!(
            "{\"record\":\"span\",\"ts_ms\":3.0,\"path\":\"w\",\"ms\":3.0,\"tid\":2}\n",
            "{\"record\":\"span\",\"ts_ms\":3.5,\"path\":\"v\",\"ms\":3.2,\"tid\":4}\n",
        ));
        let text = render(&m);
        validate(&text).expect("separate tids validate");
        // Overlapping top-level spans on the SAME thread would fail.
        let v: Value = serde_json::from_str(&text).unwrap();
        let tids: Vec<u64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X")
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        assert!(tids.contains(&2) && tids.contains(&4));
    }

    #[test]
    fn validate_rejects_partial_overlap() {
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"X","pid":1,"tid":1,"ts":0.0,"dur":10.0},
            {"name":"b","ph":"X","pid":1,"tid":1,"ts":5.0,"dur":10.0}
        ]}"#;
        let err = validate(bad).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }
}
