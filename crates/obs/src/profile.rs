//! Aggregated span call trees (`cati profile` core).
//!
//! The tracing layer emits one [`SpanClose`](crate::Event::SpanClose)
//! per span *instance*; this module folds those instances into a
//! [`SpanTree`] keyed by dot-joined path, with per-node:
//!
//! - `calls` — how many instances closed with this exact path,
//! - `total_ns` — summed wall-clock time of those instances (a parent
//!   span's total includes time spent in same-thread children),
//! - `self_ns` — `total_ns` minus the totals of direct children,
//!   floored at 0 (children running on *other* threads — rayon-shim
//!   workers — can legitimately sum past the parent's wall clock),
//! - `alloc_*` — allocation pressure. `SpanClose` already carries
//!   *self* attribution (the innermost-span accounting done by
//!   `SpanGuard` under the `alloc-profile` feature), so here
//!   `self_alloc_*` is a straight sum and `alloc_*` is the subtree
//!   rollup.
//!
//! Parenthood is purely lexical: `a.b` is a child of `a` because span
//! paths are built by appending `.name` to the parent's path. A path
//! whose parent never closed (e.g. the manifest was written while the
//! parent was still open) gets an *implicit* node with `calls == 0`
//! whose total is the sum of its children.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One span instance feeding a profile: the fields of a
/// [`SpanClose`](crate::Event::SpanClose) event or a manifest span
/// record.
#[derive(Debug, Clone, Copy)]
pub struct SpanObservation<'a> {
    /// Full dot-joined span path.
    pub path: &'a str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Self-attributed allocated bytes (0 without `alloc-profile`).
    pub alloc_bytes: u64,
    /// Self-attributed allocation count (0 without `alloc-profile`).
    pub alloc_count: u64,
}

/// One node of an aggregated [`SpanTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Last path segment (node label).
    pub name: String,
    /// Full dot-joined path.
    pub path: String,
    /// Closed span instances with exactly this path (0 for implicit
    /// intermediate nodes).
    pub calls: u64,
    /// Summed wall-clock nanoseconds (includes same-thread children;
    /// for implicit nodes, the sum of the children's totals).
    pub total_ns: u64,
    /// `total_ns` minus direct children's totals, floored at 0.
    pub self_ns: u64,
    /// Subtree allocated bytes (self + all descendants).
    pub alloc_bytes: u64,
    /// Subtree allocation count (self + all descendants).
    pub alloc_count: u64,
    /// Bytes allocated while a span with this path was innermost.
    pub self_alloc_bytes: u64,
    /// Allocations made while a span with this path was innermost.
    pub self_alloc_count: u64,
    /// Child nodes, ordered by path.
    pub children: Vec<ProfileNode>,
}

/// An aggregated profile: a forest of [`ProfileNode`]s rooted at the
/// top-level span names seen in the run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// Root nodes, ordered by path.
    pub roots: Vec<ProfileNode>,
}

#[derive(Default, Clone, Copy)]
struct Agg {
    calls: u64,
    total_ns: u64,
    self_alloc_bytes: u64,
    self_alloc_count: u64,
}

impl SpanTree {
    /// Builds a tree by aggregating span observations by path.
    pub fn from_observations<'a, I>(observations: I) -> SpanTree
    where
        I: IntoIterator<Item = SpanObservation<'a>>,
    {
        let mut by_path: BTreeMap<String, Agg> = BTreeMap::new();
        for o in observations {
            let agg = by_path.entry(o.path.to_string()).or_default();
            agg.calls += 1;
            agg.total_ns = agg.total_ns.saturating_add(o.nanos);
            agg.self_alloc_bytes = agg.self_alloc_bytes.saturating_add(o.alloc_bytes);
            agg.self_alloc_count = agg.self_alloc_count.saturating_add(o.alloc_count);
        }
        let mut roots = Vec::new();
        for (path, agg) in &by_path {
            insert(&mut roots, path, agg);
        }
        for root in &mut roots {
            finalize(root);
        }
        SpanTree { roots }
    }

    /// Total wall-clock nanoseconds across root spans.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Depth-first iteration over all nodes.
    pub fn walk(&self, mut f: impl FnMut(&ProfileNode, usize)) {
        fn go(node: &ProfileNode, depth: usize, f: &mut impl FnMut(&ProfileNode, usize)) {
            f(node, depth);
            for child in &node.children {
                go(child, depth + 1, f);
            }
        }
        for root in &self.roots {
            go(root, 0, &mut f);
        }
    }

    /// Finds a node by its full dot-joined path.
    pub fn find(&self, path: &str) -> Option<&ProfileNode> {
        fn go<'a>(nodes: &'a [ProfileNode], path: &str) -> Option<&'a ProfileNode> {
            for node in nodes {
                if node.path == path {
                    return Some(node);
                }
                if path.starts_with(&node.path)
                    && path.as_bytes().get(node.path.len()) == Some(&b'.')
                {
                    return go(&node.children, path);
                }
            }
            None
        }
        go(&self.roots, path)
    }

    /// Human-readable indented rendering, longest-total-first among
    /// siblings. Allocation columns appear only when any node carries
    /// nonzero allocation counters.
    pub fn render(&self) -> String {
        let mut any_alloc = false;
        self.walk(|n, _| any_alloc |= n.alloc_count > 0);
        let mut out = String::new();
        let mut ordered: Vec<&ProfileNode> = self.roots.iter().collect();
        ordered.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
        for root in ordered {
            render_node(root, 0, any_alloc, &mut out);
        }
        out
    }

    /// Serializes the tree as a JSON object `{"roots": [...]}`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap_or(serde_json::Value::Null)
    }
}

fn insert(nodes: &mut Vec<ProfileNode>, path: &str, agg: &Agg) {
    let mut prefix_end = 0usize;
    let mut current = nodes;
    loop {
        let rest = &path[prefix_end..];
        let (segment, is_leaf) = match rest.find('.') {
            Some(dot) => (&rest[..dot], false),
            None => (rest, true),
        };
        let node_path_end = prefix_end + segment.len();
        let node_path = &path[..node_path_end];
        let idx = match current.iter().position(|n| n.path == node_path) {
            Some(i) => i,
            None => {
                current.push(ProfileNode {
                    name: segment.to_string(),
                    path: node_path.to_string(),
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                    alloc_bytes: 0,
                    alloc_count: 0,
                    self_alloc_bytes: 0,
                    self_alloc_count: 0,
                    children: Vec::new(),
                });
                current.len() - 1
            }
        };
        if is_leaf {
            let node = &mut current[idx];
            node.calls = agg.calls;
            node.total_ns = agg.total_ns;
            node.self_alloc_bytes = agg.self_alloc_bytes;
            node.self_alloc_count = agg.self_alloc_count;
            return;
        }
        prefix_end = node_path_end + 1;
        current = &mut current[idx].children;
    }
}

/// Post-order pass computing implicit totals, self time, and subtree
/// allocation rollups.
fn finalize(node: &mut ProfileNode) {
    let mut child_total = 0u64;
    let mut child_alloc_bytes = 0u64;
    let mut child_alloc_count = 0u64;
    for child in &mut node.children {
        finalize(child);
        child_total = child_total.saturating_add(child.total_ns);
        child_alloc_bytes = child_alloc_bytes.saturating_add(child.alloc_bytes);
        child_alloc_count = child_alloc_count.saturating_add(child.alloc_count);
    }
    if node.calls == 0 {
        // Implicit intermediate: no closed instance of its own.
        node.total_ns = child_total;
        node.self_ns = 0;
    } else {
        node.self_ns = node.total_ns.saturating_sub(child_total);
    }
    node.alloc_bytes = node.self_alloc_bytes.saturating_add(child_alloc_bytes);
    node.alloc_count = node.self_alloc_count.saturating_add(child_alloc_count);
}

fn render_node(node: &ProfileNode, depth: usize, any_alloc: bool, out: &mut String) {
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{name:<width$} calls {calls:>6}  total {total:>10}  self {self_:>10}",
        name = node.name,
        width = 28usize.saturating_sub(indent.len()),
        calls = node.calls,
        total = fmt_ns(node.total_ns),
        self_ = fmt_ns(node.self_ns),
    );
    if any_alloc {
        let _ = write!(
            out,
            "  alloc {bytes}/{count}",
            bytes = fmt_bytes(node.alloc_bytes),
            count = node.alloc_count
        );
    }
    out.push('\n');
    let mut ordered: Vec<&ProfileNode> = node.children.iter().collect();
    ordered.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));
    for child in ordered {
        render_node(child, depth + 1, any_alloc, out);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(path: &str, nanos: u64) -> SpanObservation<'_> {
        SpanObservation {
            path,
            nanos,
            alloc_bytes: 0,
            alloc_count: 0,
        }
    }

    #[test]
    fn self_time_plus_children_reconstructs_parent_total() {
        let tree = SpanTree::from_observations(vec![
            obs("train", 1_000),
            obs("train.stage1", 300),
            obs("train.stage2", 450),
            obs("train.stage2.epoch", 200),
            obs("train.stage2.epoch", 150),
        ]);
        let train = tree.find("train").expect("train node");
        assert_eq!(train.calls, 1);
        assert_eq!(train.total_ns, 1_000);
        assert_eq!(train.self_ns, 1_000 - 300 - 450);
        let stage2 = tree.find("train.stage2").expect("stage2 node");
        assert_eq!(stage2.total_ns, 450);
        assert_eq!(stage2.self_ns, 450 - 350);
        let epoch = tree.find("train.stage2.epoch").expect("epoch node");
        assert_eq!(epoch.calls, 2);
        assert_eq!(epoch.total_ns, 350);
        assert_eq!(epoch.self_ns, 350);
        // Invariant the satellite test demands: every non-implicit
        // node's self + Σ direct children totals == its own total
        // (exact here; saturating only under parallel children).
        tree.walk(|n, _| {
            if n.calls > 0 {
                let child_sum: u64 = n.children.iter().map(|c| c.total_ns).sum();
                assert_eq!(n.self_ns + child_sum, n.total_ns, "at {}", n.path);
            }
        });
    }

    #[test]
    fn orphan_children_get_implicit_parents() {
        let tree =
            SpanTree::from_observations(vec![obs("serve.batch", 400), obs("serve.batch", 600)]);
        let serve = tree.find("serve").expect("implicit serve node");
        assert_eq!(serve.calls, 0);
        assert_eq!(serve.total_ns, 1_000, "implicit total is children's sum");
        assert_eq!(serve.self_ns, 0);
        let batch = tree.find("serve.batch").expect("batch node");
        assert_eq!(batch.calls, 2);
    }

    #[test]
    fn parallel_children_floor_self_time_at_zero() {
        // Two worker-thread children sum past the parent's wall clock.
        let tree = SpanTree::from_observations(vec![
            obs("par", 1_000),
            obs("par.w", 900),
            obs("par.w", 800),
        ]);
        let par = tree.find("par").expect("par node");
        assert_eq!(par.self_ns, 0, "self time saturates, never underflows");
    }

    #[test]
    fn self_alloc_sums_and_subtree_rolls_up() {
        let tree = SpanTree::from_observations(vec![
            SpanObservation {
                path: "a",
                nanos: 10,
                alloc_bytes: 100,
                alloc_count: 1,
            },
            SpanObservation {
                path: "a.b",
                nanos: 5,
                alloc_bytes: 1_000,
                alloc_count: 3,
            },
        ]);
        let a = tree.find("a").expect("a node");
        assert_eq!(a.self_alloc_bytes, 100);
        assert_eq!(a.alloc_bytes, 1_100, "subtree rollup");
        assert_eq!(a.alloc_count, 4);
    }

    #[test]
    fn tree_serializes_and_round_trips() {
        let tree = SpanTree::from_observations(vec![obs("x", 42), obs("x.y", 21)]);
        let json = serde_json::to_string(&tree).expect("serialize");
        let back: SpanTree = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, tree);
        assert!(tree.render().contains("calls"));
    }
}
