//! `cati-obs` — telemetry for the CATI pipeline.
//!
//! Three layers, all dependency-free (vendored `serde`/`serde_json`
//! only) and safe to leave permanently wired into hot paths:
//!
//! - **Structured tracing**: [`SpanGuard`] / [`span!`] time nested
//!   regions (`train.stage2_2`) and report them as typed
//!   [`Event::SpanClose`] events; nesting is tracked per thread, so
//!   spans opened on rayon-shim workers stay isolated.
//! - **Metrics registry** ([`metrics::Metrics`]): monotonic counters,
//!   gauges, and fixed-bucket histograms (non-finite observations
//!   land in an `invalid` bucket instead of panicking), snapshotted
//!   into a serializable [`metrics::MetricsSnapshot`].
//! - **Run manifests** ([`manifest`], [`recorder::Recorder`]): every
//!   instrumented run can write a `results/runs/<name>.jsonl` capturing
//!   config, seed, git revision, per-stage timings, per-epoch losses,
//!   and final metrics; `cati report` renders and diffs them.
//!
//! Instrumented code talks to a single [`Observer`] trait object. The
//! default [`NullObserver`] makes every event a no-op virtual call, so
//! telemetry never perturbs determinism (observers only *read* the
//! computation) and costs ≈nothing when disabled.

// The crate is `forbid(unsafe_code)` except under `alloc-profile`,
// whose `GlobalAlloc` impl requires two audited `unsafe` blocks that
// delegate straight to `System` (see `alloc.rs`).
#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-profile", deny(unsafe_code))]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

#[cfg(feature = "alloc-profile")]
pub mod alloc;
pub mod bench;
pub mod chrome_trace;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod prometheus;
pub mod recorder;

pub use manifest::{git_rev, peak_rss_bytes, Manifest};
pub use metrics::{Metrics, MetricsSnapshot};
pub use profile::SpanTree;
pub use recorder::{LogFormat, Recorder, RecorderConfig};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Severity of a [`Event::Message`], ordered most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error,
    /// Suspicious but survivable conditions.
    Warn,
    /// Progress lines a user running `--log-level info` wants.
    Info,
    /// High-volume detail (span opens, counter ticks).
    Debug,
}

impl Level {
    /// Parses a `--log-level` argument (defaults to `Info` for
    /// unknown input).
    pub fn parse(s: &str) -> Level {
        match s {
            "error" => Level::Error,
            "warn" => Level::Warn,
            "debug" => Level::Debug,
            _ => Level::Info,
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// One typed telemetry event. Borrowed payloads keep emission
/// allocation-free on hot paths; observers that retain events copy
/// what they need.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// A span began (`path` is the dot-joined nesting path).
    SpanOpen {
        /// Full dot-joined span path.
        path: &'a str,
    },
    /// A span finished after `nanos` nanoseconds.
    SpanClose {
        /// Full dot-joined span path.
        path: &'a str,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
        /// Heap bytes allocated on this thread while the span was the
        /// innermost open span (0 unless the `alloc-profile` feature
        /// is enabled).
        alloc_bytes: u64,
        /// Heap allocation count attributed like `alloc_bytes`.
        alloc_count: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Registry name of the counter.
        name: &'static str,
        /// Amount to add.
        delta: u64,
    },
    /// A gauge assignment (last write wins).
    Gauge {
        /// Registry name of the gauge.
        name: &'static str,
        /// New value.
        value: f64,
    },
    /// Declares a histogram's bucket bounds before first observation
    /// (idempotent; the first registration wins).
    RegisterHistogram {
        /// Registry name of the histogram.
        name: &'static str,
        /// Ascending inclusive upper bucket bounds.
        bounds: &'a [f64],
    },
    /// One histogram observation.
    Observe {
        /// Registry name of the histogram.
        name: &'static str,
        /// Observed value (non-finite values count as `invalid`).
        value: f64,
    },
    /// Mean training loss of one stage epoch.
    EpochLoss {
        /// Stage name (e.g. `stage2_2`).
        stage: &'a str,
        /// Zero-based epoch index.
        epoch: usize,
        /// Mean per-sample loss.
        loss: f64,
    },
    /// Global gradient L2 norm of one minibatch (only computed when
    /// [`Observer::wants_batch_stats`] returns true).
    GradNorm {
        /// Stage name.
        stage: &'a str,
        /// Zero-based minibatch index within the epoch.
        batch: usize,
        /// L2 norm over all parameter gradients.
        norm: f64,
    },
    /// A human-readable progress line.
    Message {
        /// Severity.
        level: Level,
        /// The line (no trailing newline).
        text: &'a str,
    },
}

/// Receives telemetry events from instrumented code.
///
/// Implementations must be cheap and side-effect-free with respect to
/// the computation being observed: training and inference results are
/// bit-identical whatever observer is installed.
pub trait Observer: Send + Sync {
    /// Handles one event.
    fn event(&self, event: &Event<'_>);

    /// Whether instrumented code should compute optional, costly
    /// per-batch statistics (gradient norms). The default `false`
    /// keeps the no-op path free of extra arithmetic.
    fn wants_batch_stats(&self) -> bool {
        false
    }
}

/// The zero-cost default observer: every event is discarded.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn event(&self, _event: &Event<'_>) {}
}

/// A ready-made `&'static dyn`-able no-op observer, for call sites
/// that don't care about telemetry: `Cati::train(.., &cati_obs::NOOP)`.
pub static NOOP: NullObserver = NullObserver;

/// An observer that forwards human-readable [`Event::Message`] lines
/// to a closure and ignores everything else — the adapter for legacy
/// `FnMut(&str)`-style progress callbacks (made `Fn` by the shared
/// observer contract).
pub struct FnObserver<F: Fn(&str) + Send + Sync>(pub F);

impl<F: Fn(&str) + Send + Sync> Observer for FnObserver<F> {
    fn event(&self, event: &Event<'_>) {
        if let Event::Message { text, .. } = event {
            (self.0)(text);
        }
    }
}

/// One open span on a thread's stack. Under `alloc-profile` each
/// frame also tracks heap activity attributed to it while it is the
/// *innermost* open span: `self_*` accumulates finished slices, and
/// `mark_*` remembers the thread counters when this frame last became
/// innermost (on its own entry, or when a child closed).
struct SpanFrame {
    path: String,
    #[cfg(feature = "alloc-profile")]
    self_bytes: u64,
    #[cfg(feature = "alloc-profile")]
    self_count: u64,
    #[cfg(feature = "alloc-profile")]
    mark_bytes: u64,
    #[cfg(feature = "alloc-profile")]
    mark_count: u64,
}

thread_local! {
    /// Per-thread stack of open span frames. Worker threads spawned by
    /// the rayon shim start with an empty stack, so their spans root
    /// at their own names and never interleave with other threads'.
    static SPAN_STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
}

static NEXT_THREAD_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_TOKEN: Cell<u64> = const { Cell::new(0) };
}

/// A small positive integer identifying the calling thread, stable for
/// the thread's lifetime and dense across the process (first caller
/// gets 1). Used by [`Recorder`] to stamp span records with a thread
/// identity the Chrome-trace exporter can lane spans by; unlike
/// `std::thread::ThreadId` it serializes naturally.
pub fn thread_token() -> u64 {
    THREAD_TOKEN.with(|token| {
        if token.get() == 0 {
            token.set(NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed));
        }
        token.get()
    })
}

/// An RAII timer for one span: emits [`Event::SpanOpen`] on entry and
/// [`Event::SpanClose`] with the elapsed time on drop. Nest guards
/// lexically; the dot-joined path records the nesting.
pub struct SpanGuard<'a> {
    obs: &'a dyn Observer,
    path: String,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span named `name` under the thread's current span (if
    /// any).
    pub fn enter(obs: &'a dyn Observer, name: &str) -> SpanGuard<'a> {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            #[cfg(feature = "alloc-profile")]
            let (now_count, now_bytes) = alloc::thread_counters();
            #[cfg(feature = "alloc-profile")]
            if let Some(top) = stack.last_mut() {
                // The parent stops being innermost: bank its slice.
                top.self_bytes += now_bytes.saturating_sub(top.mark_bytes);
                top.self_count += now_count.saturating_sub(top.mark_count);
            }
            let path = match stack.last() {
                Some(parent) => format!("{}.{name}", parent.path),
                None => name.to_string(),
            };
            stack.push(SpanFrame {
                path: path.clone(),
                #[cfg(feature = "alloc-profile")]
                self_bytes: 0,
                #[cfg(feature = "alloc-profile")]
                self_count: 0,
                #[cfg(feature = "alloc-profile")]
                mark_bytes: now_bytes,
                #[cfg(feature = "alloc-profile")]
                mark_count: now_count,
            });
            path
        });
        obs.event(&Event::SpanOpen { path: &path });
        SpanGuard {
            obs,
            path,
            start: Instant::now(),
        }
    }

    /// The full dot-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        #[allow(unused_mut)]
        let mut alloc_totals = (0u64, 0u64);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            #[cfg(feature = "alloc-profile")]
            let (now_count, now_bytes) = alloc::thread_counters();
            // Guards drop LIFO in normal use; tolerate out-of-order
            // drops by removing the matching entry wherever it is.
            if let Some(i) = stack.iter().rposition(|f| f.path == self.path) {
                #[allow(clippy::let_underscore_untyped)]
                let _frame = stack.remove(i);
                #[cfg(feature = "alloc-profile")]
                {
                    alloc_totals = (
                        _frame
                            .self_bytes
                            .wrapping_add(now_bytes.saturating_sub(_frame.mark_bytes)),
                        _frame
                            .self_count
                            .wrapping_add(now_count.saturating_sub(_frame.mark_count)),
                    );
                    if let Some(top) = stack.last_mut() {
                        // The parent is innermost again: restart its
                        // slice at the current counters.
                        top.mark_bytes = now_bytes;
                        top.mark_count = now_count;
                    }
                }
            }
        });
        self.obs.event(&Event::SpanClose {
            path: &self.path,
            nanos,
            alloc_bytes: alloc_totals.0,
            alloc_count: alloc_totals.1,
        });
    }
}

#[cfg(all(test, feature = "alloc-profile"))]
#[global_allocator]
static TEST_COUNTING_ALLOCATOR: alloc::CountingAllocator = alloc::CountingAllocator;

/// Opens a [`SpanGuard`] with a format-string name:
/// `let _g = span!(obs, "train.{stage}");`.
#[macro_export]
macro_rules! span {
    ($obs:expr, $($fmt:tt)+) => {
        $crate::SpanGuard::enter($obs, &format!($($fmt)+))
    };
}

/// Emits an [`Event::Message`] with format-string text:
/// `info!(obs, "extracted {n} VUCs");`.
#[macro_export]
macro_rules! info {
    ($obs:expr, $($fmt:tt)+) => {
        $crate::Observer::event($obs, &$crate::Event::Message {
            level: $crate::Level::Info,
            text: &format!($($fmt)+),
        })
    };
}

/// Emits a [`Level::Warn`] [`Event::Message`] with format-string
/// text: `warn!(obs, "cache write failed: {e}");`.
#[macro_export]
macro_rules! warn {
    ($obs:expr, $($fmt:tt)+) => {
        $crate::Observer::event($obs, &$crate::Event::Message {
            level: $crate::Level::Warn,
            text: &format!($($fmt)+),
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture(Mutex<Vec<String>>);

    impl Observer for Capture {
        fn event(&self, event: &Event<'_>) {
            if let Event::SpanClose { path, .. } = event {
                self.0.lock().unwrap().push(path.to_string());
            }
        }
    }

    #[test]
    fn spans_nest_lexically() {
        let cap = Capture::default();
        {
            let _a = SpanGuard::enter(&cap, "outer");
            {
                let _b = span!(&cap, "inner{}", 1);
            }
        }
        let got = cap.0.lock().unwrap().clone();
        assert_eq!(got, vec!["outer.inner1".to_string(), "outer".to_string()]);
    }

    /// A 1 MiB `Vec` allocated while `outer.inner` is the innermost
    /// open span must be charged to it — not to `outer`, whose
    /// self-allocation only covers its own bookkeeping.
    #[cfg(feature = "alloc-profile")]
    #[test]
    fn allocations_attribute_to_the_innermost_span() {
        #[derive(Default)]
        struct AllocCapture(Mutex<Vec<(String, u64, u64)>>);
        impl Observer for AllocCapture {
            fn event(&self, event: &Event<'_>) {
                if let Event::SpanClose {
                    path,
                    alloc_bytes,
                    alloc_count,
                    ..
                } = event
                {
                    self.0
                        .lock()
                        .unwrap()
                        .push((path.to_string(), *alloc_bytes, *alloc_count));
                }
            }
        }
        const BIG: usize = 1 << 20;
        let cap = AllocCapture::default();
        {
            let _outer = SpanGuard::enter(&cap, "alloc_outer");
            {
                let _inner = SpanGuard::enter(&cap, "alloc_inner");
                let v: Vec<u8> = Vec::with_capacity(BIG);
                drop(v);
            }
        }
        let got = cap.0.lock().unwrap().clone();
        let inner = got
            .iter()
            .find(|(p, ..)| p == "alloc_outer.alloc_inner")
            .expect("inner span close");
        let outer = got
            .iter()
            .find(|(p, ..)| p == "alloc_outer")
            .expect("outer span close");
        assert!(
            inner.1 >= BIG as u64,
            "inner span owns the {BIG}-byte Vec, saw {} bytes",
            inner.1
        );
        assert!(inner.2 >= 1, "inner span saw no allocations");
        assert!(
            outer.1 < BIG as u64,
            "outer self-allocation ({} bytes) must exclude the child's Vec",
            outer.1
        );
    }

    #[test]
    fn fn_observer_receives_messages_only() {
        let lines = Mutex::new(Vec::new());
        let obs = FnObserver(|s: &str| lines.lock().unwrap().push(s.to_string()));
        obs.event(&Event::Counter {
            name: "x",
            delta: 1,
        });
        info!(&obs, "hello {}", 42);
        assert_eq!(lines.into_inner().unwrap(), vec!["hello 42".to_string()]);
    }
}
