//! Prometheus text exposition (format version 0.0.4) for
//! [`MetricsSnapshot`], plus a validating parser used by tests and CI
//! to assert the exposition is well-formed.
//!
//! Metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` by
//! mapping every other character (the registry uses dots:
//! `serve.phase.embed_ms`) to `_`. Histograms follow the standard
//! cumulative encoding: one `_bucket{le="..."}` sample per bound, a
//! `+Inf` bucket equal to `_count`, then `_sum` and `_count`.
//! Non-finite observations are exposed as a separate
//! `<name>_invalid_total` counter rather than being folded into the
//! buckets — a NaN latency must be visible, not laundered.

use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The content type Prometheus scrapers expect.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps a registry name onto the Prometheus metric-name alphabet.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot as Prometheus exposition text.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(g.value));
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cum += h.counts.get(i).copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_value(*bound));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
        let _ = writeln!(out, "{name}_count {}", h.count);
        if h.invalid > 0 {
            let _ = writeln!(out, "# TYPE {name}_invalid_total counter");
            let _ = writeln!(out, "{name}_invalid_total {}", h.invalid);
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed exposition: `# TYPE` declarations and all samples.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Declared metric types by family name.
    pub types: BTreeMap<String, String>,
    /// All samples in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples whose name equals `name`.
    pub fn samples_named(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The single value of an unlabelled sample, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("bad value `{other}`: {e}")),
    }
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{s}`"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("bad label name `{key}`"));
        }
        rest = rest[eq + 1..].trim_start();
        let inner = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("label value not quoted in `{s}`"))?;
        let close = inner
            .find('"')
            .ok_or_else(|| format!("unterminated label value in `{s}`"))?;
        labels.push((key, inner[..close].to_string()));
        rest = inner[close + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in `{s}`"));
        }
    }
    Ok(labels)
}

/// Parses and validates exposition text.
///
/// Beyond line syntax, histogram families (declared `# TYPE ...
/// histogram`) are checked structurally: bucket counts cumulative and
/// non-decreasing by `le`, a `+Inf` bucket present and equal to
/// `<family>_count`, and `_sum` present.
///
/// # Errors
///
/// Returns a description of the first malformed line or violated
/// histogram invariant.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or(format!("line {}: TYPE without name", i + 1))?;
                let kind = parts
                    .next()
                    .ok_or(format!("line {}: TYPE without kind", i + 1))?;
                if !valid_name(name) {
                    return Err(format!("line {}: bad metric name `{name}`", i + 1));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {}: unknown TYPE `{kind}`", i + 1));
                }
                exp.types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        let (name_part, after) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or(format!("line {}: unterminated labels", i + 1))?;
                if close < brace {
                    return Err(format!("line {}: mismatched braces", i + 1));
                }
                let labels = parse_labels(line[brace + 1..close].trim())
                    .map_err(|e| format!("line {}: {e}", i + 1))?;
                (
                    (line[..brace].trim().to_string(), labels),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let mut parts = line.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or_default().to_string();
                ((name, Vec::new()), parts.next().unwrap_or("").trim())
            }
        };
        let (name, labels) = name_part;
        if !valid_name(&name) {
            return Err(format!("line {}: bad metric name `{name}`", i + 1));
        }
        let mut fields = after.split_whitespace();
        let value = parse_value(
            fields
                .next()
                .ok_or(format!("line {}: missing value", i + 1))?,
        )
        .map_err(|e| format!("line {}: {e}", i + 1))?;
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {}: bad timestamp `{ts}`", i + 1))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {}: trailing junk", i + 1));
        }
        exp.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    validate_histograms(&exp)?;
    Ok(exp)
}

fn validate_histograms(exp: &Exposition) -> Result<(), String> {
    for (family, kind) in &exp.types {
        if kind != "histogram" {
            continue;
        }
        let buckets = exp.samples_named(&format!("{family}_bucket"));
        if buckets.is_empty() {
            return Err(format!("histogram `{family}` has no buckets"));
        }
        let mut prev = 0.0f64;
        let mut inf_value = None;
        for b in &buckets {
            let le = b
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or(format!("histogram `{family}`: bucket without le"))?;
            if b.value < prev {
                return Err(format!(
                    "histogram `{family}`: bucket counts not cumulative at le={le}"
                ));
            }
            prev = b.value;
            if le == "+Inf" {
                inf_value = Some(b.value);
            }
        }
        let inf = inf_value.ok_or(format!("histogram `{family}`: missing +Inf bucket"))?;
        let count = exp
            .value(&format!("{family}_count"))
            .ok_or(format!("histogram `{family}`: missing _count"))?;
        if (inf - count).abs() > f64::EPSILON * count.abs().max(1.0) {
            return Err(format!(
                "histogram `{family}`: +Inf bucket {inf} != _count {count}"
            ));
        }
        if exp.value(&format!("{family}_sum")).is_none() {
            return Err(format!("histogram `{family}`: missing _sum"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn render_parses_and_round_trips_values() {
        let m = Metrics::new();
        m.inc("serve.requests", 7);
        m.set_gauge("serve.queue.depth", 3.0);
        m.register_histogram("serve.latency_ms", &[1.0, 5.0, 25.0]);
        for v in [0.5, 2.0, 4.0, 30.0, f64::NAN] {
            m.observe("serve.latency_ms", v);
        }
        let text = render(&m.snapshot());
        let exp = parse(&text).expect("exposition parses");
        assert_eq!(exp.value("serve_requests"), Some(7.0));
        assert_eq!(exp.value("serve_queue_depth"), Some(3.0));
        assert_eq!(
            exp.types.get("serve_latency_ms").map(String::as_str),
            Some("histogram")
        );
        let buckets = exp.samples_named("serve_latency_ms_bucket");
        assert_eq!(buckets.len(), 4, "3 bounds + +Inf");
        assert_eq!(buckets[0].value, 1.0, "≤1: {{0.5}}");
        assert_eq!(buckets[1].value, 3.0, "≤5 cumulative");
        assert_eq!(buckets[3].value, 4.0, "+Inf equals count");
        assert_eq!(exp.value("serve_latency_ms_count"), Some(4.0));
        assert_eq!(exp.value("serve_latency_ms_invalid_total"), Some(1.0));
    }

    #[test]
    fn sanitize_maps_registry_names_onto_the_prometheus_alphabet() {
        assert_eq!(sanitize("serve.phase.embed_ms"), "serve_phase_embed_ms");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("no value here\nx").is_err());
        assert!(parse("bad-name 1.0").is_err());
        assert!(parse("m{le=\"unterminated} 1.0").is_err());
        assert!(parse("m 1.0 extra junk").is_err());
    }

    #[test]
    fn parse_rejects_inconsistent_histograms() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 10\n\
                    h_count 3\n";
        let err = parse(text).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
        let text2 = "# TYPE h histogram\n\
                     h_bucket{le=\"1\"} 1\n\
                     h_sum 10\n\
                     h_count 1\n";
        let err2 = parse(text2).unwrap_err();
        assert!(err2.contains("+Inf"), "{err2}");
    }
}
