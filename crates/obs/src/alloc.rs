//! Counting global allocator for the `alloc-profile` feature.
//!
//! [`CountingAllocator`] wraps [`System`] and bumps two per-thread
//! counters (allocation count, allocated bytes) on every `alloc`.
//! [`SpanGuard`](crate::SpanGuard) samples [`thread_counters`] on
//! entry, on child entry/exit, and on drop, attributing each slice of
//! heap activity to the span that was *innermost* while it happened.
//!
//! The allocator must be installed by the final binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cati_obs::alloc::CountingAllocator =
//!     cati_obs::alloc::CountingAllocator;
//! ```
//!
//! Without that line the feature still compiles and every counter
//! stays 0. Deallocations are deliberately not tracked: the counters
//! measure allocation *pressure* (how much a span asks of the
//! allocator), not live heap size, so they are monotone per thread
//! and span deltas can never go negative.
//!
//! This is the only module in the crate that needs `unsafe`: two
//! blocks that delegate verbatim to `System`. The counter updates use
//! `Cell::try_with` so allocations during thread-local teardown are
//! silently uncounted instead of aborting.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Monotone per-thread allocation counters `(count, bytes)` since the
/// thread first allocated. Both are 0 when [`CountingAllocator`] is
/// not installed as the global allocator.
pub fn thread_counters() -> (u64, u64) {
    (
        ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
        ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

/// A [`System`]-delegating global allocator that counts per-thread
/// allocation count and bytes. Zero branches beyond two thread-local
/// `Cell` bumps per `alloc`; `dealloc` is pure delegation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
        let _ = ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(layout.size() as u64)));
        // SAFETY: contract is inherited unchanged from the caller and
        // discharged by the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: as above — pure delegation.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_see_a_big_allocation() {
        let (c0, b0) = thread_counters();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let (c1, b1) = thread_counters();
        drop(v);
        let (c2, b2) = thread_counters();
        assert!(c1 > c0, "allocation count did not advance");
        assert!(b1 >= b0 + (1 << 16), "byte counter missed the Vec");
        assert!(c2 >= c1 && b2 >= b1, "counters must be monotone");
    }
}
