//! Run-manifest JSONL: parsing, validation, rendering, and diffing of
//! the files [`crate::Recorder::write_manifest`] produces.
//!
//! A manifest is one JSON object per line. The first line has
//! `"record":"meta"` (config, seed, git revision, start time); then
//! the timeline (`span` / `loss` / `message` lines with monotonic
//! `ts_ms`); then a `metrics` line holding the final
//! [`MetricsSnapshot`]; then an `end` line with the wall time.

use crate::metrics::MetricsSnapshot;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Milliseconds since the Unix epoch.
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. The
/// scale benchmarks record this to demonstrate that out-of-core
/// training keeps peak memory flat as the corpus grows.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Best-effort git revision of the checkout containing `start` (or
/// any ancestor directory): reads `.git/HEAD` without invoking git.
/// Falls back to the `GITHUB_SHA` environment variable, then `None`.
pub fn git_rev(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let head = d.join(".git/HEAD");
        if let Ok(content) = std::fs::read_to_string(&head) {
            let content = content.trim();
            let rev = match content.strip_prefix("ref: ") {
                Some(r) => std::fs::read_to_string(d.join(".git").join(r.trim()))
                    .ok()
                    .map(|s| s.trim().to_string()),
                None => Some(content.to_string()),
            };
            if let Some(rev) = rev.filter(|r| !r.is_empty()) {
                return Some(rev);
            }
        }
        dir = d.parent();
    }
    std::env::var("GITHUB_SHA").ok().filter(|s| !s.is_empty())
}

/// One closed span from a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanLine {
    /// Dot-joined path.
    pub path: String,
    /// Duration in milliseconds.
    pub ms: f64,
    /// Timestamp (ms since run start) of the span *close*.
    pub ts_ms: f64,
    /// Thread token of the recording thread (0 in manifests written
    /// before thread identity was recorded).
    pub tid: u64,
    /// Self-attributed allocated bytes (0 without `alloc-profile`).
    pub alloc_bytes: u64,
    /// Self-attributed allocation count (0 without `alloc-profile`).
    pub alloc_count: u64,
}

/// One stage-epoch loss from a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct LossLine {
    /// Stage name.
    pub stage: String,
    /// Zero-based epoch.
    pub epoch: usize,
    /// Mean per-sample loss.
    pub loss: f64,
}

/// A parsed run manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// The `meta` line (config, seed, git revision, ...).
    pub meta: Value,
    /// All spans in file order.
    pub spans: Vec<SpanLine>,
    /// All per-epoch losses in file order.
    pub losses: Vec<LossLine>,
    /// All `(ts_ms, level, text)` messages in file order.
    pub messages: Vec<(f64, String, String)>,
    /// The final metrics snapshot, if present.
    pub metrics: Option<MetricsSnapshot>,
    /// Total wall time from the `end` line.
    pub wall_ms: Option<f64>,
    /// Every line's `ts_ms` in file order (for validation).
    pub ts_seq: Vec<f64>,
}

impl Manifest {
    /// Parses manifest JSONL.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a non-object line, or a first line
    /// that is not a `meta` record.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest::default();
        let mut saw_meta = false;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("manifest line {}: {e}", i + 1))?;
            let record = v["record"]
                .as_str()
                .ok_or_else(|| format!("manifest line {}: missing \"record\" field", i + 1))?
                .to_string();
            if !saw_meta && record != "meta" {
                return Err(format!(
                    "manifest line {}: first record is `{record}`, expected `meta`",
                    i + 1
                ));
            }
            if let Some(ts) = v["ts_ms"].as_f64() {
                m.ts_seq.push(ts);
            }
            match record.as_str() {
                "meta" => {
                    saw_meta = true;
                    m.meta = v;
                }
                "span" => m.spans.push(SpanLine {
                    path: v["path"].as_str().unwrap_or("?").to_string(),
                    ms: v["ms"].as_f64().unwrap_or(0.0),
                    ts_ms: v["ts_ms"].as_f64().unwrap_or(0.0),
                    tid: v["tid"].as_u64().unwrap_or(0),
                    alloc_bytes: v["alloc_bytes"].as_u64().unwrap_or(0),
                    alloc_count: v["alloc_count"].as_u64().unwrap_or(0),
                }),
                "loss" => m.losses.push(LossLine {
                    stage: v["stage"].as_str().unwrap_or("?").to_string(),
                    epoch: v["epoch"].as_u64().unwrap_or(0) as usize,
                    loss: v["loss"].as_f64().unwrap_or(f64::NAN),
                }),
                "message" => m.messages.push((
                    v["ts_ms"].as_f64().unwrap_or(0.0),
                    v["level"].as_str().unwrap_or("info").to_string(),
                    v["text"].as_str().unwrap_or("").to_string(),
                )),
                "metrics" => {
                    m.metrics = serde_json::from_value(v["snapshot"].clone()).ok();
                }
                "end" => m.wall_ms = v["wall_ms"].as_f64(),
                // Unknown records are forward-compatible: skipped.
                _ => {}
            }
        }
        if !saw_meta {
            return Err("manifest is empty (no meta record)".to_string());
        }
        Ok(m)
    }

    /// Checks the invariants CI asserts on smoke runs: a meta record
    /// exists, at least one span or loss was captured, and timestamps
    /// never go backwards.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.meta.is_null() {
            return Err("no meta record".to_string());
        }
        if self.spans.is_empty() && self.losses.is_empty() {
            return Err("manifest captured no spans and no losses".to_string());
        }
        for w in self.ts_seq.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "timestamps go backwards: {:.3}ms then {:.3}ms",
                    w[0], w[1]
                ));
            }
        }
        if let Some(ms) = self.wall_ms {
            if !ms.is_finite() || ms < 0.0 {
                return Err(format!("bad wall_ms {ms}"));
            }
        }
        Ok(())
    }

    /// Total milliseconds per span path (summed over repeats).
    pub fn span_totals(&self) -> BTreeMap<String, f64> {
        let mut totals = BTreeMap::new();
        for s in &self.spans {
            *totals.entry(s.path.clone()).or_default() += s.ms;
        }
        totals
    }

    /// Aggregates the manifest's spans into a call tree (see
    /// [`crate::profile`]).
    pub fn span_tree(&self) -> crate::profile::SpanTree {
        crate::profile::SpanTree::from_observations(self.spans.iter().map(|s| {
            crate::profile::SpanObservation {
                path: &s.path,
                nanos: (s.ms * 1e6) as u64,
                alloc_bytes: s.alloc_bytes,
                alloc_count: s.alloc_count,
            }
        }))
    }

    /// Final (last-epoch) loss per stage.
    pub fn final_losses(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for l in &self.losses {
            out.insert(l.stage.clone(), l.loss);
        }
        out
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let meta = &self.meta;
        let _ = writeln!(out, "run: {}", meta["name"].as_str().unwrap_or("?"));
        for key in ["scale", "seed", "threads", "git_rev", "started_unix_ms"] {
            if !meta[key].is_null() {
                let _ = writeln!(out, "  {key}: {}", render_scalar(&meta[key]));
            }
        }
        if let Some(ms) = self.wall_ms {
            let _ = writeln!(out, "  wall: {}", fmt_ms(ms));
        }
        let totals = self.span_totals();
        if !totals.is_empty() {
            let _ = writeln!(out, "spans (total per path):");
            let width = totals.keys().map(String::len).max().unwrap_or(0);
            for (path, ms) in &totals {
                let _ = writeln!(out, "  {path:<width$}  {:>12}", fmt_ms(*ms));
            }
            let tree = self.span_tree();
            // The tree view only adds information when spans nest.
            if tree.roots.iter().any(|r| !r.children.is_empty()) {
                let _ = writeln!(out, "span tree (calls / total / self):");
                for line in tree.render().lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        if !self.losses.is_empty() {
            let _ = writeln!(out, "losses (per stage, per epoch):");
            let mut by_stage: BTreeMap<&str, Vec<(usize, f64)>> = BTreeMap::new();
            for l in &self.losses {
                by_stage
                    .entry(&l.stage)
                    .or_default()
                    .push((l.epoch, l.loss));
            }
            for (stage, mut epochs) in by_stage {
                epochs.sort_by_key(|&(e, _)| e);
                let curve: Vec<String> = epochs.iter().map(|(_, l)| format!("{l:.4}")).collect();
                let _ = writeln!(out, "  {stage}: {}", curve.join(" -> "));
            }
        }
        if let Some(m) = &self.metrics {
            if !m.counters.is_empty() {
                let _ = writeln!(out, "counters:");
                for c in &m.counters {
                    let _ = writeln!(out, "  {:<32} {:>12}", c.name, c.value);
                }
            }
            if !m.gauges.is_empty() {
                let _ = writeln!(out, "gauges:");
                for g in &m.gauges {
                    let _ = writeln!(out, "  {:<32} {:>12.4}", g.name, g.value);
                }
            }
            if !m.histograms.is_empty() {
                let _ = writeln!(out, "histograms:");
                for h in &m.histograms {
                    let quantiles = match (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)) {
                        (Some(p50), Some(p95), Some(p99)) => {
                            format!(" p50={p50:.4} p95={p95:.4} p99={p99:.4}")
                        }
                        _ => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "  {:<32} n={} mean={:.4}{quantiles} invalid={}",
                        h.name,
                        h.count,
                        h.mean(),
                        h.invalid
                    );
                }
            }
        }
        out
    }

    /// Renders a side-by-side diff of two manifests: span-time deltas,
    /// counter deltas, and final-loss deltas.
    pub fn diff(a: &Manifest, b: &Manifest) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diff: {} -> {}",
            a.meta["name"].as_str().unwrap_or("a"),
            b.meta["name"].as_str().unwrap_or("b")
        );
        if let (Some(wa), Some(wb)) = (a.wall_ms, b.wall_ms) {
            let _ = writeln!(
                out,
                "  wall: {} -> {} ({})",
                fmt_ms(wa),
                fmt_ms(wb),
                fmt_delta_pct(wa, wb)
            );
        }
        let (ta, tb) = (a.span_totals(), b.span_totals());
        let paths: std::collections::BTreeSet<&String> = ta.keys().chain(tb.keys()).collect();
        if !paths.is_empty() {
            let _ = writeln!(out, "spans:");
            let width = paths.iter().map(|p| p.len()).max().unwrap_or(0);
            for path in paths {
                match (ta.get(path), tb.get(path)) {
                    (Some(&ma), Some(&mb)) => {
                        let _ = writeln!(
                            out,
                            "  {path:<width$}  {:>12} -> {:>12} ({})",
                            fmt_ms(ma),
                            fmt_ms(mb),
                            fmt_delta_pct(ma, mb)
                        );
                    }
                    (Some(&ma), None) => {
                        let _ = writeln!(out, "  {path:<width$}  {:>12} -> (absent)", fmt_ms(ma));
                    }
                    (None, Some(&mb)) => {
                        let _ = writeln!(out, "  {path:<width$}  (absent) -> {:>12}", fmt_ms(mb));
                    }
                    (None, None) => {}
                }
            }
        }
        let (la, lb) = (a.final_losses(), b.final_losses());
        let stages: std::collections::BTreeSet<&String> = la.keys().chain(lb.keys()).collect();
        if !stages.is_empty() {
            let _ = writeln!(out, "final losses:");
            for stage in stages {
                let _ = writeln!(
                    out,
                    "  {stage}: {} -> {}",
                    la.get(stage).map_or("-".into(), |l| format!("{l:.4}")),
                    lb.get(stage).map_or("-".into(), |l| format!("{l:.4}")),
                );
            }
        }
        let empty = MetricsSnapshot::default();
        let ma = a.metrics.as_ref().unwrap_or(&empty);
        let mb = b.metrics.as_ref().unwrap_or(&empty);
        let names: std::collections::BTreeSet<&String> = ma
            .counters
            .iter()
            .map(|c| &c.name)
            .chain(mb.counters.iter().map(|c| &c.name))
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "counters:");
            for name in names {
                let va = ma.counter(name).unwrap_or(0);
                let vb = mb.counter(name).unwrap_or(0);
                let delta = vb as i128 - va as i128;
                let _ = writeln!(out, "  {name:<32} {va:>12} -> {vb:>12} ({delta:+})");
            }
        }
        out
    }
}

fn render_scalar(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        other => serde_json::to_string(other).unwrap_or_default(),
    }
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 10_000.0 {
        format!("{:.2}s", ms / 1e3)
    } else {
        format!("{ms:.1}ms")
    }
}

fn fmt_delta_pct(a: f64, b: f64) -> String {
    if a <= 0.0 {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (b - a) / a * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_missing_meta() {
        let err = Manifest::parse("{\"record\":\"span\",\"path\":\"x\",\"ms\":1.0}").unwrap_err();
        assert!(err.contains("expected `meta`"), "{err}");
        assert!(Manifest::parse("").is_err());
    }

    #[test]
    fn validate_catches_backwards_timestamps() {
        let text = "{\"record\":\"meta\",\"ts_ms\":0.0,\"name\":\"t\"}\n\
                    {\"record\":\"span\",\"ts_ms\":5.0,\"path\":\"a\",\"ms\":5.0}\n\
                    {\"record\":\"span\",\"ts_ms\":2.0,\"path\":\"b\",\"ms\":1.0}\n";
        let m = Manifest::parse(text).unwrap();
        let err = m.validate().unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn render_and_diff_do_not_panic_on_minimal_manifests() {
        let text = "{\"record\":\"meta\",\"ts_ms\":0.0,\"name\":\"t\",\"seed\":7}\n\
                    {\"record\":\"span\",\"ts_ms\":1.0,\"path\":\"train\",\"ms\":1.0}\n\
                    {\"record\":\"loss\",\"ts_ms\":2.0,\"stage\":\"stage1\",\"epoch\":0,\"loss\":0.5}\n\
                    {\"record\":\"end\",\"ts_ms\":3.0,\"wall_ms\":3.0}\n";
        let m = Manifest::parse(text).unwrap();
        m.validate().unwrap();
        let rendered = m.render();
        assert!(rendered.contains("stage1"));
        let d = Manifest::diff(&m, &m);
        assert!(d.contains("train"));
    }
}
