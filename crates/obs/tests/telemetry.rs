//! Integration tests for the telemetry crate: span nesting under the
//! rayon-shim worker threads, histogram edge cases, and the manifest
//! JSONL round-trip through the vendored serde_json.

use cati_obs::metrics::Metrics;
use cati_obs::{Event, Level, Manifest, Observer, Recorder, RecorderConfig, SpanGuard};
use rayon::prelude::*;
use serde_json::json;
use std::sync::Mutex;

#[derive(Default)]
struct CaptureSpans(Mutex<Vec<String>>);

impl Observer for CaptureSpans {
    fn event(&self, event: &Event<'_>) {
        if let Event::SpanClose { path, .. } = event {
            self.0.lock().unwrap().push(path.to_string());
        }
    }
}

#[test]
fn spans_on_rayon_workers_never_inherit_foreign_parents() {
    let cap = CaptureSpans::default();
    {
        let _outer = SpanGuard::enter(&cap, "outer");
        // Worker threads must root their spans at their own names —
        // never under another thread's open span and never nested
        // into a sibling task's span.
        let ids: Vec<u32> = (0..64).collect();
        let _done: Vec<u32> = ids
            .into_par_iter()
            .with_max_len(1)
            .map(|i| {
                let _task = SpanGuard::enter(&cap, &format!("task{i}"));
                i
            })
            .collect();
    }
    let paths = cap.0.into_inner().unwrap();
    assert_eq!(paths.len(), 65);
    for p in &paths {
        if p == "outer" {
            continue;
        }
        // Either rooted bare (worker thread) or directly under
        // `outer` (task inlined on the calling thread) — but never
        // nested under a *sibling* task.
        let ok = p.starts_with("task") || (p.starts_with("outer.task") && !p.contains("task."));
        assert!(ok, "unexpected span path {p:?}");
    }
    assert_eq!(paths.iter().filter(|p| p.contains("task")).count(), 64);
}

#[test]
fn concurrent_counter_increments_never_lose_updates() {
    let metrics = Metrics::new();
    let work: Vec<u64> = (0..1000).collect();
    let _done: Vec<u64> = work
        .into_par_iter()
        .with_max_len(8)
        .map(|i| {
            metrics.inc("hits", 1);
            i
        })
        .collect();
    assert_eq!(metrics.counter_value("hits"), 1000);
}

#[test]
fn histograms_survive_hostile_values() {
    let metrics = Metrics::new();
    metrics.register_histogram("h", &[1.0, 10.0]);
    for v in [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -5.0,
        0.5,
        5.0,
        50.0,
    ] {
        metrics.observe("h", v); // must not panic
    }
    let snap = metrics.snapshot();
    let h = snap.histogram("h").expect("histogram registered");
    assert_eq!(h.invalid, 3, "non-finite observations land in invalid");
    assert_eq!(h.count, 4, "finite observations all counted");
    assert_eq!(h.counts, vec![2, 1, 1], "-5.0/0.5 | 5.0 | 50.0 overflow");
}

#[test]
fn manifest_roundtrips_through_vendored_serde_json() {
    let recorder = Recorder::new(RecorderConfig::default());
    {
        let _span = SpanGuard::enter(&recorder, "extract");
    }
    recorder.event(&Event::EpochLoss {
        stage: "Stage1",
        epoch: 0,
        loss: 0.75,
    });
    recorder.event(&Event::EpochLoss {
        stage: "Stage1",
        epoch: 1,
        loss: 0.5,
    });
    recorder.event(&Event::Counter {
        name: "vote.clipped",
        delta: 7,
    });
    recorder.event(&Event::Message {
        level: Level::Info,
        text: "hello",
    });
    let text = recorder.manifest_jsonl(&json!({"name": "unit", "seed": 13}));
    let manifest = Manifest::parse(&text).expect("manifest parses");
    manifest.validate().expect("manifest validates");
    assert_eq!(manifest.meta.get("name"), Some(&json!("unit")));
    assert_eq!(manifest.meta.get("seed"), Some(&json!(13)));
    assert_eq!(manifest.spans.len(), 1);
    assert_eq!(manifest.spans[0].path, "extract");
    assert_eq!(
        manifest.final_losses().get("Stage1").copied(),
        Some(0.5),
        "last epoch wins"
    );
    let snap = manifest.metrics.as_ref().expect("metrics line present");
    assert_eq!(snap.counter("vote.clipped"), Some(7));
    // Round-trip again: rendering and re-parsing the same text is
    // stable, and the metrics snapshot survives serialization exactly.
    let again = Manifest::parse(&text).unwrap();
    assert_eq!(again.metrics, manifest.metrics);
    assert!(!manifest.render().is_empty());

    // Validation catches a non-monotonic timeline.
    let mut lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 4);
    lines.swap(1, 2);
    let swapped = lines.join("\n");
    let bad = Manifest::parse(&swapped).unwrap();
    // Swapping adjacent timeline records with distinct timestamps
    // must trip the monotonicity check (equal stamps stay valid).
    if bad.ts_seq.windows(2).any(|w| w[0] > w[1]) {
        assert!(bad.validate().is_err());
    }

    // A manifest with no meta line is rejected outright.
    assert!(Manifest::parse("{\"record\":\"end\",\"ts_ms\":0,\"wall_ms\":0}\n").is_err());
}

#[test]
fn manifest_diff_names_both_runs() {
    let make = |loss: f64| {
        let r = Recorder::silent();
        {
            let _s = SpanGuard::enter(&r, "train");
        }
        r.event(&Event::EpochLoss {
            stage: "Stage1",
            epoch: 0,
            loss,
        });
        Manifest::parse(&r.manifest_jsonl(&json!({"name": "d"}))).unwrap()
    };
    let a = make(0.9);
    let b = make(0.4);
    let diff = Manifest::diff(&a, &b);
    assert!(diff.contains("train"), "diff mentions the span: {diff}");
    assert!(diff.contains("Stage1"), "diff mentions the loss: {diff}");
}
