//! Full training run with model persistence and per-application
//! evaluation — the workflow of paper §VII.
//!
//! ```sh
//! cargo run --release --example train_and_infer [small|medium]
//! ```

use cati::{pipeline_accuracy, Cati, Config};
use cati_analysis::{extract, FeatureView};
use cati_synbin::{build_corpus, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let (config, corpus_cfg) = match scale.as_str() {
        "medium" => (Config::medium(), CorpusConfig::medium(7)),
        _ => (Config::small(), CorpusConfig::small(7)),
    };
    let corpus = build_corpus(&corpus_cfg);
    let cati = Cati::train(
        &corpus.train,
        &config,
        &cati::obs::FnObserver(|line: &str| println!("[train] {line}")),
    );

    // Persist and reload, as a deployment would.
    let model_path = std::env::temp_dir().join("cati_trained_model.json");
    cati.save(&model_path)?;
    println!(
        "model saved to {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path)?.len()
    );
    let cati = Cati::load(&model_path)?;

    // Evaluate per application at both granularities.
    println!(
        "\n{:<12} {:>8} {:>9} {:>8} {:>9}",
        "app", "vuc-acc", "vuc-n", "var-acc", "var-n"
    );
    let mut by_app: std::collections::BTreeMap<String, (f64, u64, f64, u64)> = Default::default();
    for built in &corpus.test {
        let ex = extract(&built.binary, FeatureView::Stripped)?;
        let (va, vn, ra, rn) = pipeline_accuracy(&cati, &ex);
        let e = by_app.entry(built.app.clone()).or_insert((0.0, 0, 0.0, 0));
        e.0 += va * vn as f64;
        e.1 += vn;
        e.2 += ra * rn as f64;
        e.3 += rn;
    }
    let (mut tv, mut tn, mut rv, mut rn_total) = (0.0, 0u64, 0.0, 0u64);
    for (app, (va, vn, ra, rn)) in &by_app {
        println!(
            "{:<12} {:>8.3} {:>9} {:>8.3} {:>9}",
            app,
            va / (*vn).max(1) as f64,
            vn,
            ra / (*rn).max(1) as f64,
            rn
        );
        tv += va;
        tn += vn;
        rv += ra;
        rn_total += rn;
    }
    println!(
        "{:<12} {:>8.3} {:>9} {:>8.3} {:>9}",
        "total",
        tv / tn.max(1) as f64,
        tn,
        rv / rn_total.max(1) as f64,
        rn_total
    );
    std::fs::remove_file(&model_path).ok();
    Ok(())
}
