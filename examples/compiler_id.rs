//! Compiler identification (paper §VIII): tell GCC output from Clang
//! output at VUC and binary granularity.
//!
//! ```sh
//! cargo run --release --example compiler_id [small|medium]
//! ```

use cati::{embedding_sentences, CompilerId, Config};
use cati_analysis::{extract, Extraction, FeatureView};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{build_corpus, Compiler, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let (config, make_cfg): (Config, fn(u64) -> CorpusConfig) = match scale.as_str() {
        "medium" => (Config::medium(), CorpusConfig::medium),
        _ => (Config::small(), CorpusConfig::small),
    };
    let gcc = build_corpus(&make_cfg(1).with_compiler(Compiler::Gcc));
    let clang = build_corpus(&make_cfg(2).with_compiler(Compiler::Clang));

    // Shared embedder over both compilers' code.
    let mut all = gcc.train.clone();
    all.extend(clang.train.iter().cloned());
    let mut rng = StdRng::seed_from_u64(0);
    let sentences = embedding_sentences(&all, config.max_sentences, &mut rng);
    let embedder = VucEmbedder::new(Word2Vec::train(&sentences, config.w2v));

    let extract_all = |binaries: &[cati_synbin::BuiltBinary], compiler: Compiler| {
        binaries
            .iter()
            .map(|b| {
                (
                    extract(&b.binary, FeatureView::WithSymbols).unwrap(),
                    compiler,
                )
            })
            .collect::<Vec<_>>()
    };
    let train: Vec<(Extraction, Compiler)> = extract_all(&gcc.train, Compiler::Gcc)
        .into_iter()
        .chain(extract_all(&clang.train, Compiler::Clang))
        .collect();
    let test: Vec<(Extraction, Compiler)> = extract_all(&gcc.test, Compiler::Gcc)
        .into_iter()
        .chain(extract_all(&clang.test, Compiler::Clang))
        .collect();

    let train_refs: Vec<(&Extraction, Compiler)> = train.iter().map(|(e, c)| (e, *c)).collect();
    let test_refs: Vec<(&Extraction, Compiler)> = test.iter().map(|(e, c)| (e, *c)).collect();

    println!("training compiler-id classifier...");
    let id = CompilerId::train(&train_refs, &embedder, &config);
    let vuc_acc = id.accuracy(&embedder, &test_refs);

    let mut bin_ok = 0usize;
    for (ex, truth) in &test_refs {
        if id.predict_binary(&embedder, ex) == *truth {
            bin_ok += 1;
        }
    }
    println!("VUC-level accuracy:    {:.2}%", vuc_acc * 100.0);
    println!(
        "binary-level accuracy: {:.2}% ({bin_ok}/{} binaries)",
        100.0 * bin_ok as f64 / test_refs.len() as f64,
        test_refs.len()
    );
    println!("(paper reports 100% on this task)");
    Ok(())
}
