//! Quickstart: train CATI on a synthetic corpus and infer variable
//! types from an unseen stripped binary.
//!
//! ```sh
//! cargo run --release --example quickstart [small|medium]
//! ```

use cati::{Cati, Config};
use cati_synbin::{build_corpus, CorpusConfig};

/// Formats a signed frame offset as `-0x18` / `0x40`.
fn hex_off(off: i32) -> String {
    if off < 0 {
        format!("-{:#x}", -(off as i64))
    } else {
        format!("{off:#x}")
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let (config, corpus_cfg) = match scale.as_str() {
        "medium" => (Config::medium(), CorpusConfig::medium(42)),
        _ => (Config::small(), CorpusConfig::small(42)),
    };

    println!("building corpus ({scale})...");
    let corpus = build_corpus(&corpus_cfg);
    println!(
        "  {} training binaries, {} test binaries",
        corpus.train.len(),
        corpus.test.len()
    );

    println!("training CATI...");
    let cati = Cati::train(
        &corpus.train,
        &config,
        &cati::obs::FnObserver(|line: &str| println!("  {line}")),
    );

    // Take one unseen application binary, strip it, and infer.
    let built = &corpus.test[0];
    let stripped = built.binary.strip();
    println!(
        "\ninferring types for stripped binary `{}` (app {})",
        stripped.name, built.app
    );
    let mut inferred = cati.infer(&stripped)?;
    inferred.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));

    println!(
        "{:<6} {:>8}  {:<22} {:>5} {:>6}",
        "func", "offset", "type", "vucs", "conf"
    );
    for var in inferred.iter().take(20) {
        println!(
            "{:<6} {:>8}  {:<22} {:>5} {:>5.0}%",
            var.key.func,
            hex_off(var.key.offset),
            var.class.to_string(),
            var.vuc_count,
            var.confidence * 100.0
        );
    }
    println!("... {} variables total", inferred.len());
    Ok(())
}
