//! Occlusion importance study (paper Fig. 6): which positions of the
//! 21-instruction window drive the prediction?
//!
//! ```sh
//! cargo run --release --example occlusion_study [small|medium]
//! ```

use cati::{importance_heatmap, Cati, Config, EmbeddedExtraction};
use cati_analysis::{extract, Extraction, FeatureView, WINDOW};
use cati_dwarf::StageId;
use cati_synbin::{build_corpus, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let (config, corpus_cfg, max_vucs) = match scale.as_str() {
        "medium" => (Config::medium(), CorpusConfig::medium(99), 2000),
        _ => (Config::small(), CorpusConfig::small(99), 300),
    };
    let corpus = build_corpus(&corpus_cfg);
    let cati = Cati::train(&corpus.train, &config, &cati::obs::NOOP);

    let exs: Vec<Extraction> = corpus
        .test
        .iter()
        .take(4)
        .map(|b| extract(&b.binary, FeatureView::Stripped))
        .collect::<Result<_, _>>()?;
    let sessions: Vec<EmbeddedExtraction> = exs
        .iter()
        .map(|ex| EmbeddedExtraction::new(&cati.embedder, ex))
        .collect();

    println!("computing occlusion heatmap over <= {max_vucs} VUCs (Stage 1)...");
    let heatmap = importance_heatmap(&cati, &sessions, StageId::Stage1, max_vucs);
    println!("sampled {} VUCs\n", heatmap.samples);
    println!("pos   P(eps<0.1) ... P(eps<1.0)   importance");
    for (k, row) in heatmap.rows.iter().enumerate() {
        let marker = if k == WINDOW { " <= target" } else { "" };
        let cells: Vec<String> = row.iter().map(|v| format!("{:5.1}%", v * 100.0)).collect();
        println!(
            "{k:>3}   {}   {:.4}{marker}",
            cells.join(" "),
            heatmap.row_importance(k)
        );
    }
    println!(
        "\ncenter importance {:.4} vs edge importance {:.4}",
        heatmap.row_importance(WINDOW),
        (heatmap.row_importance(0) + heatmap.row_importance(2 * WINDOW)) / 2.0
    );
    Ok(())
}
