//! Offline stand-in for `serde` (the subset this workspace uses).
//!
//! The build environment has no network access, so the workspace
//! vendors a minimal serde: data types convert to and from a JSON
//! [`Value`] tree via the [`Serialize`] / [`Deserialize`] traits, and
//! `#[derive(Serialize, Deserialize)]` is provided by the companion
//! `serde_derive` proc-macro crate. The JSON data model matches real
//! serde's external tagging conventions (structs → objects, unit enum
//! variants → strings, data variants → single-key objects, newtype
//! structs → transparent), so files written by this stand-in are
//! shaped like the ones real serde would write.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Serialization: convert `self` to a JSON [`Value`].
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization: reconstruct `Self` from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value tree.
    ///
    /// # Errors
    ///
    /// Fails with a [`DeError`] describing the first mismatch between
    /// the value and `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field is absent (`None` means
    /// "required field"; `Option<T>` overrides this).
    #[doc(hidden)]
    fn missing() -> Option<Self> {
        None
    }
}

/// Deserialization error: a path-less description of what mismatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "Expected X" constructor.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// Unknown enum variant constructor.
    pub fn unknown_variant(name: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{name}` for {ty}"))
    }

    /// Missing struct field constructor.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------
// Derive support helpers (stable API for generated code only).
// ---------------------------------------------------------------

/// The two external-tagging shapes an enum value can take.
#[doc(hidden)]
pub enum EnumRepr<'a> {
    /// `"Variant"`.
    Unit(&'a str),
    /// `{"Variant": data}`.
    Data(&'a str, &'a Value),
}

/// Classifies a value as one of the enum representations.
#[doc(hidden)]
pub fn enum_repr<'a>(v: &'a Value, ty: &str) -> Result<EnumRepr<'a>, DeError> {
    match v {
        Value::String(s) => Ok(EnumRepr::Unit(s)),
        Value::Object(m) if m.len() == 1 => {
            let (k, inner) = m.iter().next().expect("len checked");
            Ok(EnumRepr::Data(k, inner))
        }
        other => Err(DeError::expected(
            &format!("string or single-key object for enum {ty}"),
            other,
        )),
    }
}

/// Builds the `{"Variant": data}` representation.
#[doc(hidden)]
pub fn variant_value(name: &str, inner: Value) -> Value {
    let mut m = Map::new();
    m.insert(name.to_string(), inner);
    Value::Object(m)
}

/// Views a value as the object of struct `ty`.
#[doc(hidden)]
pub fn as_object_for<'a>(v: &'a Value, ty: &str) -> Result<&'a Map, DeError> {
    v.as_object()
        .ok_or_else(|| DeError::expected(&format!("object for {ty}"), v))
}

/// Views a value as the fixed-arity array of tuple `ty`.
#[doc(hidden)]
pub fn as_array_for<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], DeError> {
    let a = v
        .as_array()
        .ok_or_else(|| DeError::expected(&format!("array for {ty}"), v))?;
    if a.len() != len {
        return Err(DeError(format!(
            "expected {len} elements for {ty}, got {}",
            a.len()
        )));
    }
    Ok(a)
}

/// Extracts and deserializes one struct field.
#[doc(hidden)]
pub fn field<T: Deserialize>(m: &Map, name: &str, ty: &str) -> Result<T, DeError> {
    match m.get(name) {
        Some(v) => T::from_value(v),
        None => T::missing().ok_or_else(|| DeError::missing_field(name, ty)),
    }
}

// ---------------------------------------------------------------
// Implementations for std types.
// ---------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        // JSON cannot carry non-finite numbers; serde writes null.
        if v.is_null() {
            return Ok(f32::NAN);
        }
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("f32", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        a.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = as_array_for(v, "tuple", $len)?;
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str().to_string());
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
