//! The JSON value tree shared by `serde` and `serde_json`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// A JSON number: integer-preserving where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    /// From a signed integer (normalized to `PosInt` when possible).
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// From a float (kept as `Float` even for integral values so the
    /// round-trip preserves the original bit pattern).
    pub fn from_f64(f: f64) -> Number {
        Number::Float(f)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `f64` (always possible, possibly lossy for huge ints).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key (linear scan; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Appends or replaces a key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    /// A short name for the value's JSON type (error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self, f, None, 0)
    }
}

/// Writes a value as JSON. `indent = Some(step)` pretty-prints.
pub(crate) fn write_value(
    v: &Value,
    out: &mut dyn fmt::Write,
    indent: Option<usize>,
    level: usize,
) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(true) => out.write_str("true"),
        Value::Bool(false) => out.write_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_json_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                return out.write_str("[]");
            }
            out.write_char('[')?;
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_break(out, indent, level + 1)?;
                write_value(item, out, indent, level + 1)?;
            }
            write_break(out, indent, level)?;
            out.write_char(']')
        }
        Value::Object(m) => {
            if m.is_empty() {
                return out.write_str("{}");
            }
            out.write_char('{')?;
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_break(out, indent, level + 1)?;
                write_json_string(k, out)?;
                out.write_char(':')?;
                if indent.is_some() {
                    out.write_char(' ')?;
                }
                write_value(item, out, indent, level + 1)?;
            }
            write_break(out, indent, level)?;
            out.write_char('}')
        }
    }
}

fn write_break(out: &mut dyn fmt::Write, indent: Option<usize>, level: usize) -> fmt::Result {
    if let Some(step) = indent {
        out.write_char('\n')?;
        for _ in 0..step * level {
            out.write_char(' ')?;
        }
    }
    Ok(())
}

fn write_number(n: Number, out: &mut dyn fmt::Write) -> fmt::Result {
    match n {
        Number::PosInt(v) => write!(out, "{v}"),
        Number::NegInt(v) => write!(out, "{v}"),
        Number::Float(f) if !f.is_finite() => out.write_str("null"),
        Number::Float(f) => {
            // Rust's float Display is the shortest string that parses
            // back to the same value, so the round-trip is exact; add
            // ".0" to keep integral floats recognizably floats.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                write!(out, "{f:.1}")
            } else {
                write!(out, "{f}")
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut dyn fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Renders a value to a JSON string (compact or pretty).
pub fn to_json_string(v: &Value, pretty: bool) -> String {
    let mut s = String::new();
    write_value(v, &mut s, if pretty { Some(2) } else { None }, 0).expect("fmt to String");
    s
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::from_f64(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::from_f64(f64::from(f)))
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty => $via:ident),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::$via(n as _))
            }
        }
    )*};
}
impl_value_from_int!(u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64,
                     usize => from_u64, i8 => from_i64, i16 => from_i64, i32 => from_i64,
                     i64 => from_i64, isize => from_i64);
