//! Offline stand-in for `criterion` (the subset this workspace uses).
//!
//! A plain wall-clock harness with criterion-compatible macros and
//! types: each benchmark is warmed up briefly, then timed for a fixed
//! budget, and the mean per-iteration time is printed. There are no
//! statistics, plots, or baselines — just numbers on stdout — but the
//! bench files compile and run unchanged.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Measurement budget per benchmark after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Work-rate annotation for a benchmark group (printed alongside the
/// per-iteration time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timing (ignored here; each
/// iteration is set up and timed individually).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Sets the nominal sample count (accepted for compatibility;
    /// this harness times by wall-clock budget instead).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self._sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_benchmark(name, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{name}", self.name), self.throughput, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter`/`iter_batched` do the
/// actual timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh untimed `setup` output each iteration.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    // Warm up with single iterations until the budget is spent, which
    // also calibrates the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut per_iter = Duration::ZERO;
    while warm_start.elapsed() < WARMUP_BUDGET && warm_iters < 1000 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        warm_iters += 1;
    }
    let iters = (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / mean),
        None => String::new(),
    };
    println!("{name:<40} {}{rate}   ({iters} iters)", format_time(mean));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>9.3} µs", secs * 1e6)
    } else {
        format!("{:>9.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
/// Under `cargo test` (which passes `--test`) the benchmarks are
/// skipped so the target just reports success.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
