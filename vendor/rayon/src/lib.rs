//! Offline stand-in for `rayon` (the subset this workspace uses).
//!
//! Parallel iterators are *indexed producers*: a pipeline knows its
//! base length and can materialize any contiguous range of items.
//! Consumption splits the base range into fixed-size shards —
//! a function of the input length only, never of the thread count —
//! and distributes contiguous runs of shards across scoped worker
//! threads. Shard results are combined strictly in shard order, so
//! `collect`, `sum`, and `reduce` return *bit-identical* results for
//! any thread count, including floating-point reductions. That
//! determinism is a deliberate departure from real rayon (whose
//! `reduce` tree shape varies run to run) and is what the workspace's
//! threads=1 vs threads=N parity tests rely on.
//!
//! Supported: `par_iter` on slices/`Vec`, `into_par_iter` on `Vec`
//! (items `Clone`), `map`, `map_init` (per-shard state),
//! `flat_map_iter`, `zip` (indexed bases only), `collect` into
//! `Vec`, `sum`, `reduce`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] and
//! [`current_num_threads`] for thread-count control.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Traits to import at use sites, mirroring `rayon::prelude`.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

// ---------------------------------------------------------------
// Thread-count control
// ---------------------------------------------------------------

/// Global thread count set by `ThreadPoolBuilder::build_global`
/// (0 = use hardware parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override set by `ThreadPool::install`
    /// (0 = fall back to the global setting).
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations will use on this
/// thread: an `install` override if present, else the global setting,
/// else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Thread-pool configuration error (infallible here; kept for
/// signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] or the global default.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = hardware parallelism).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle whose `install` scopes the thread count.
    ///
    /// # Errors
    ///
    /// Infallible in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Sets the process-wide default thread count.
    ///
    /// # Errors
    ///
    /// Infallible in this stand-in (real rayon errors on a second
    /// call; this one just overwrites).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A lightweight handle scoping parallel operations to a thread
/// count. Threads are spawned per operation, not pooled.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }

    /// Runs `op` with this pool's thread count as the ambient
    /// parallelism for every parallel iterator it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = LOCAL_THREADS.with(|c| c.replace(self.current_num_threads()));
        let result = op();
        LOCAL_THREADS.with(|c| c.set(prev));
        result
    }
}

// ---------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------

/// A parallel iterator: an indexed producer plus combinators.
///
/// `produce` must append exactly the items of `range` (by base
/// index), in order. Consumers shard `0..base_len()` and combine
/// shard outputs in shard order.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of *base* items (pre-flattening).
    fn base_len(&self) -> usize;

    /// Materializes the items for a contiguous base range, in order.
    fn produce(&self, range: Range<usize>, out: &mut Vec<Self::Item>);

    /// Upper bound on shard length requested by the pipeline
    /// (`usize::MAX` = no preference). Combinators forward their
    /// base's bound; [`ParallelIterator::with_max_len`] overrides it.
    fn max_shard_len(&self) -> usize {
        usize::MAX
    }

    /// Caps shards at `len` items, mirroring rayon's `with_max_len`.
    /// `with_max_len(1)` forces one shard per item, which is how
    /// coarse-grained stages (six CNNs) each get their own worker.
    /// The cap is part of the pipeline, not the thread count, so
    /// determinism across thread counts is preserved.
    fn with_max_len(self, len: usize) -> WithMaxLen<Self> {
        WithMaxLen {
            base: self,
            len: len.max(1),
        }
    }

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Maps each item through `f` with per-shard state from `init`.
    /// `init` runs once per contiguous shard (not per item), so the
    /// state can hold scratch buffers that are reused across the
    /// shard's items — the moral equivalent of rayon's `map_init`.
    fn map_init<I, F, T, R>(self, init: I, f: F) -> MapInit<Self, I, F>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Maps each item to a serial iterator and flattens. The result
    /// is no longer indexed by base position — do not `zip` after it.
    fn flat_map_iter<F, I>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> I + Sync,
        I: IntoIterator,
        I::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Pairs items positionally with another indexed iterator,
    /// truncating to the shorter length.
    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Runs the pipeline and collects into `C` (order preserved).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items. Shard partial sums are combined in shard
    /// order, so float sums are deterministic for any thread count.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_shards(&self, |p, range| {
            let mut items = Vec::new();
            p.produce(range, &mut items);
            items.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Folds items with `op`, seeding each shard from `identity()`
    /// and folding shard results in shard order — deterministic for
    /// any thread count (fixed shard boundaries), unlike real rayon.
    fn reduce<Op, Id>(self, identity: Id, op: Op) -> Self::Item
    where
        Op: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        Id: Fn() -> Self::Item + Sync,
    {
        let partials = run_shards(&self, |p, range| {
            let mut items = Vec::new();
            p.produce(range, &mut items);
            items.into_iter().fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }
}

/// Conversion into a [`ParallelIterator`] (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on collections, yielding references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Collecting from a [`ParallelIterator`] (mirrors rayon's trait).
pub trait FromParallelIterator<T: Send> {
    /// Runs `p` and gathers its items in order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Vec<T> {
        let mut shards = run_shards(&p, |p, range| {
            let mut out = Vec::new();
            p.produce(range, &mut out);
            out
        });
        if shards.len() == 1 {
            return shards.pop().expect("one shard");
        }
        let total = shards.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for shard in shards {
            out.extend(shard);
        }
        out
    }
}

// ---------------------------------------------------------------
// The execution engine
// ---------------------------------------------------------------

/// Shard size as a function of input length only. Keeping it
/// independent of the thread count is what makes every consumer
/// deterministic across thread counts.
fn shard_size(len: usize) -> usize {
    // Small inputs: one shard (no spawn overhead). Larger inputs:
    // fixed 16-item shards, giving enough shards to balance load.
    // Written with clamp rather than an if/else: this toolchain's
    // optimizer has been observed flipping the branch polarity of
    // `if len <= 16 { len.max(1) } else { 16 }` at opt-level 2
    // (returning `len` for large inputs, which silently collapses
    // everything into one shard). The clamp form compiles to
    // straight-line selects and is covered by the shard-count
    // canary test below.
    len.clamp(1, 16)
}

/// Splits `0..base_len` into fixed shards, evaluates `work` on each,
/// and returns shard results in shard order. Contiguous runs of
/// shards go to scoped worker threads; workers run nested parallel
/// iterators sequentially to avoid oversubscription.
fn run_shards<P, R, W>(p: &P, work: W) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    W: Fn(&P, Range<usize>) -> R + Sync,
{
    let n = p.base_len();
    let size = shard_size(n).min(p.max_shard_len()).max(1);
    let mut shards: Vec<Range<usize>> =
        (0..n).step_by(size).map(|s| s..(s + size).min(n)).collect();
    if shards.is_empty() {
        // Zero-length input still produces one (empty) shard.
        shards.push(0..0);
    }
    let threads = current_num_threads().min(shards.len()).max(1);
    if threads == 1 {
        return shards.into_iter().map(|r| work(p, r)).collect();
    }
    let per_worker = shards.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = shards
            .chunks(per_worker)
            .map(|run| {
                scope.spawn(move || {
                    // Workers execute their shards (and any nested
                    // parallel iterators) sequentially.
                    let prev = LOCAL_THREADS.with(|c| c.replace(1));
                    let out: Vec<R> = run.iter().map(|r| work(p, r.clone())).collect();
                    LOCAL_THREADS.with(|c| c.set(prev));
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------
// Producers
// ---------------------------------------------------------------

/// Borrowing iterator over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<&'a T>) {
        out.extend(self.slice[range].iter());
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Owning iterator over a `Vec` (items cloned out of shared storage;
/// the workspace only consumes vectors of cheap `Clone` items).
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> ParallelIterator for VecIter<T> {
    type Item = T;

    fn base_len(&self) -> usize {
        self.items.len()
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<T>) {
        out.extend(self.items[range].iter().cloned());
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<P: ParallelIterator> IntoParallelIterator for P {
    type Item = P::Item;
    type Iter = P;

    fn into_par_iter(self) -> P {
        self
    }
}

// ---------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<R>) {
        let mut tmp = Vec::with_capacity(range.len());
        self.base.produce(range, &mut tmp);
        out.extend(tmp.into_iter().map(&self.f));
    }

    fn max_shard_len(&self) -> usize {
        self.base.max_shard_len()
    }
}

/// See [`ParallelIterator::with_max_len`].
pub struct WithMaxLen<P> {
    base: P,
    len: usize,
}

impl<P: ParallelIterator> ParallelIterator for WithMaxLen<P> {
    type Item = P::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<P::Item>) {
        self.base.produce(range, out);
    }

    fn max_shard_len(&self) -> usize {
        self.len.min(self.base.max_shard_len())
    }
}

/// See [`ParallelIterator::map_init`].
pub struct MapInit<P, I, F> {
    base: P,
    init: I,
    f: F,
}

impl<P, I, F, T, R> ParallelIterator for MapInit<P, I, F>
where
    P: ParallelIterator,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<R>) {
        let mut tmp = Vec::with_capacity(range.len());
        self.base.produce(range, &mut tmp);
        let mut state = (self.init)();
        out.extend(tmp.into_iter().map(|item| (self.f)(&mut state, item)));
    }

    fn max_shard_len(&self) -> usize {
        self.base.max_shard_len()
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, F, I> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> I + Sync,
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<I::Item>) {
        let mut tmp = Vec::with_capacity(range.len());
        self.base.produce(range, &mut tmp);
        for item in tmp {
            out.extend((self.f)(item));
        }
    }

    fn max_shard_len(&self) -> usize {
        self.base.max_shard_len()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn base_len(&self) -> usize {
        self.a.base_len().min(self.b.base_len())
    }

    fn produce(&self, range: Range<usize>, out: &mut Vec<(A::Item, B::Item)>) {
        let mut xs = Vec::with_capacity(range.len());
        let mut ys = Vec::with_capacity(range.len());
        self.a.produce(range.clone(), &mut xs);
        self.b.produce(range, &mut ys);
        out.extend(xs.into_iter().zip(ys));
    }

    fn max_shard_len(&self) -> usize {
        self.a.max_shard_len().min(self.b.max_shard_len())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let xs: Vec<u32> = (0..40).collect();
        let out: Vec<u32> = xs.par_iter().flat_map_iter(|&x| vec![x, x + 100]).collect();
        let expect: Vec<u32> = (0..40).flat_map(|x| [x, x + 100]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zip_pairs_positionally() {
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (100..150).collect();
        let out: Vec<u32> = a.par_iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(out[0], 100);
        assert_eq!(out[49], 49 + 149);
    }

    #[test]
    fn float_sum_is_identical_across_thread_counts() {
        let xs: Vec<f32> = (0..1000).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let sums: Vec<f32> = [1usize, 2, 4, 7]
            .iter()
            .map(|&t| {
                let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
                pool.install(|| xs.par_iter().map(|&x| x * 1.0001).sum::<f32>())
            })
            .collect();
        assert!(
            sums.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()),
            "{sums:?}"
        );
    }

    #[test]
    fn reduce_is_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..777).map(|i| (i as f64).sin()).collect();
        let results: Vec<f64> = [1usize, 3, 8]
            .iter()
            .map(|&t| {
                let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
                pool.install(|| xs.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b))
            })
            .collect();
        assert!(
            results.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()),
            "{results:?}"
        );
    }

    #[test]
    fn map_init_reuses_state_within_shards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let xs: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = xs
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u32>::new()
                },
                |scratch, &x| {
                    scratch.push(x);
                    x + 1
                },
            )
            .collect();
        assert_eq!(out, (1..=100).collect::<Vec<u32>>());
        // 100 items / 16-item shards = 7 shards: one init per shard,
        // far fewer than one per item.
        assert_eq!(inits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: u32 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }
}
