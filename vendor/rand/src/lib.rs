//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), uniform range sampling ([`Rng::gen_range`]),
//! Bernoulli draws ([`Rng::gen_bool`]), slice shuffling/choosing
//! ([`seq::SliceRandom`]) and weighted index sampling
//! ([`distributions::WeightedIndex`]).
//!
//! The generated streams are deterministic per seed but are NOT the
//! same streams as the real `rand` crate; everything in this
//! workspace (corpus generation, training) is self-contained, so only
//! internal reproducibility matters.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything an RNG must provide.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    /// A sample of a type with a canonical uniform distribution
    /// (integers: full range; `bool`: fair coin; floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// `u64` bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64` bits to a uniform `f32` in `[0, 1)` using the top 24 bits.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types with a canonical "just give me one" distribution, used by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample from. Blanket-implemented
/// over [`SampleUniform`] so type inference flows from the range's
/// element type to `gen_range`'s return type (mirrors real rand).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Scalars with uniform range sampling.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let draw = rng.next_u64() % span;
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f32(rng.next_u64()) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f32(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The full generator state, for checkpointing. Restoring the
        /// returned words with [`StdRng::from_state`] yields a
        /// generator whose future output is bit-identical to this
        /// one's.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously captured with
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffle and choose on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Distribution objects.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("invalid weights: empty, negative, or all zero")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Weight scalar types accepted by [`WeightedIndex`].
    pub trait Weight: Copy {
        /// Lossy widening to `f64` for accumulation.
        fn to_f64(self) -> f64;
    }

    macro_rules! impl_weight {
        ($($t:ty),*) => {$(
            impl Weight for $t {
                fn to_f64(self) -> f64 {
                    self as f64
                }
            }
        )*};
    }
    impl_weight!(f32, f64, u8, u16, u32, u64, usize);

    /// Discrete distribution over indices `0..n` proportional to the
    /// given weights.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex<X: Weight> {
        cumulative: Vec<f64>,
        total: f64,
        _marker: std::marker::PhantomData<X>,
    }

    impl<X: Weight> WeightedIndex<X> {
        /// Builds the distribution.
        ///
        /// # Errors
        ///
        /// Fails if the weights are empty, any is negative, or all are
        /// zero.
        pub fn new<I>(weights: I) -> Result<WeightedIndex<X>, WeightedError>
        where
            I: IntoIterator<Item = X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = w.to_f64();
                // Rejects NaN (not finite), infinities, and negatives.
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex {
                cumulative,
                total,
                _marker: std::marker::PhantomData,
            })
        }
    }

    impl<X: Weight> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let draw = unit_f64(rng.next_u64()) * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&draw).expect("finite weights"))
            {
                // Exact hit on a boundary belongs to the next bucket.
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..1 << 60), c.gen_range(0u64..1 << 60));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream_exactly() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            a.gen_range(0u64..1 << 60);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice identical");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "counts {counts:?}");
        assert!(WeightedIndex::<f64>::new([]).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0f64, 2.0]).is_err());
    }
}
