//! Offline stand-in for `serde_derive`.
//!
//! Parses `struct` / `enum` items directly from the token stream (no
//! `syn`/`quote`, which are unavailable offline) and emits
//! implementations of the vendored `serde`'s value-tree traits. The
//! supported shape grammar covers everything this workspace derives:
//! non-generic structs (named, tuple, unit) and enums whose variants
//! are unit, tuple, or struct-like. `#[serde(...)]` attributes are
//! not supported and the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("expected [...] after #"),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1; // pub(crate) etc.
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("derive stand-in does not support generic type `{name}`");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(body)),
            }
        }
        other => panic!("derive supports struct/enum, got `{other}`"),
    }
}

/// Parses `field: Type, ...` capturing names; skips types by tracking
/// `<`/`>` depth so commas inside generics don't split fields.
fn parse_named_fields(body: TokenStream) -> Fields {
    let mut c = Cursor::new(body);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        let raw = c.expect_ident();
        names.push(raw.strip_prefix("r#").unwrap_or(&raw).to_string());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_type_until_comma(&mut c);
    }
    Fields::Named(names)
}

fn skip_type_until_comma(c: &mut Cursor) {
    let mut angle = 0i32;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                c.pos += 1;
                return;
            }
            _ => {}
        }
        c.pos += 1;
    }
}

/// Counts top-level comma-separated chunks of a tuple body, skipping
/// per-field attributes and visibility.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        count += 1;
        skip_type_until_comma(&mut c);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and/or the trailing comma.
        let mut angle = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    c.pos += 1;
                    break;
                }
                _ => {}
            }
            c.pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------
// Code generation (source strings; parsed back into TokenStream)
// ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::variant_value(\"{vn}\", \
                         ::serde::Serialize::to_value(x0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::variant_value(\"{vn}\", \
                             ::serde::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.insert(\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ {inner} \
                             ::serde::variant_value(\"{vn}\", ::serde::Value::Object(m)) }},\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = format!("let m = ::serde::as_object_for(v, \"{name}\")?;\n");
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!("{f}: ::serde::field(m, \"{f}\", \"{name}\")?,\n"));
            }
            s.push_str("})");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = ::serde::as_array_for(v, \"{name}\", {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let a = ::serde::as_array_for(inner, \"{name}::{vn}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inner_s =
                            format!("let m = ::serde::as_object_for(inner, \"{name}::{vn}\")?;\n");
                        inner_s.push_str(&format!("::std::result::Result::Ok({name}::{vn} {{\n"));
                        for f in fields {
                            inner_s.push_str(&format!(
                                "{f}: ::serde::field(m, \"{f}\", \"{name}::{vn}\")?,\n"
                            ));
                        }
                        inner_s.push_str("})");
                        data_arms.push_str(&format!("\"{vn}\" => {{\n{inner_s}\n}},\n"));
                    }
                }
            }
            format!(
                "match ::serde::enum_repr(v, \"{name}\")? {{\n\
                 ::serde::EnumRepr::Unit(s) => match s {{\n{unit_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n\
                 ::serde::EnumRepr::Data(s, inner) => match s {{\n{data_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
