//! Offline stand-in for `serde_json`.
//!
//! A recursive-descent JSON parser and writer over the vendored
//! `serde` crate's [`Value`] tree. Covers the workspace's usage:
//! `to_string` / `to_string_pretty` / `to_vec`, `from_str` /
//! `from_slice`, the [`Value`] type with indexing, and a `json!`
//! macro for object/array literals with expression values.

#![forbid(unsafe_code)]

pub use serde::value::{Map, Number, Value};

#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// This crate's result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` keeps call sites
/// source-compatible with real `serde_json`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_json_string(&value.to_value(), false))
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this stand-in.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_json_string(&value.to_value(), true))
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Infallible in this stand-in.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this stand-in.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON, trailing input, or a shape mismatch with
/// `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse_value_complete(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserializes a typed value from an already-parsed [`Value`].
///
/// # Errors
///
/// Fails on a shape mismatch with `T`.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T> {
    Ok(T::from_value(&v)?)
}

/// Builds a [`Value`] from a JSON-shaped literal. Object keys are
/// string literals; values are arbitrary serializable expressions
/// (nested literals need an explicit inner `json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::__private::Serialize::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__private::Serialize::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::__private::Serialize::to_value(&$other) };
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect a low surrogate escape next.
                    self.eat(b'\\')?;
                    self.eat(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("invalid escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        // Integers overflowing i64/u64 (e.g. the full decimal
        // expansion Rust's float Display emits for huge values) fall
        // back to f64, like real serde_json.
        let n = if is_float {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::from_i64(v),
                Err(_) => Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::from_u64(v),
                Err(_) => Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(
            from_str::<String>("\"a\\nb\\u00e9\"").unwrap(),
            "a\nb\u{e9}"
        );
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[
            0.1f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -0.0,
            123456.789,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "through {s}");
        }
        for &f in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30] {
            let s = to_string(&f).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "through {s}");
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip_as_nan() {
        let s = to_string(&f32::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f32 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<(String, u32)> = vec![("a".into(), 1), ("b".into(), 2)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[\"a\",1],[\"b\",2]]");
        let back: Vec<(String, u32)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_builds_objects() {
        let name = String::from("x.json");
        let v = json!({"file": name, "opt": 2u8, "ok": true});
        assert_eq!(v["file"].as_str(), Some("x.json"));
        assert_eq!(v["opt"].as_u64(), Some(2));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(json!(null), Value::Null);
        let a = json!([1u8, 2u8]);
        assert_eq!(a[1].as_u64(), Some(2));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({"a": 1u8});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
