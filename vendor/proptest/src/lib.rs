//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Strategies generate values directly from a per-test deterministic
//! RNG (seeded from the test's name), with no shrinking: a failing
//! case panics with the assertion message and the raw inputs are
//! recoverable by re-running the test. Supported surface: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!`, [`Strategy`] with `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, tuple and integer /
//! float range strategies, regex-lite `"[a-z_]{1,12}"` string
//! strategies, [`Just`], `prop_oneof!`, [`any`], `collection::vec`,
//! `option::of`, and `sample::Index`.

#![forbid(unsafe_code)]

// Let crate-internal code (and doctests) refer to `proptest::...`
// the way downstream crates do.
extern crate self as proptest;

use rand::rngs::StdRng;
use rand::Rng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Module alias so `prop::sample::Index` resolves via the prelude,
/// as it does with real proptest.
pub mod prop {
    pub use crate::sample;
}

pub mod prelude {
    //! The glob import used by test files.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// ---------------------------------------------------------------
// Arbitrary
// ---------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy's type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for primitives (raw RNG bits).
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> AnyPrimitive<$t> {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_prim! {
    bool => |rng| rng.gen_bool(0.5),
    u8 => |rng| rand::RngCore::next_u64(rng) as u8,
    u16 => |rng| rand::RngCore::next_u64(rng) as u16,
    u32 => |rng| rand::RngCore::next_u32(rng),
    u64 => rand::RngCore::next_u64,
    usize => |rng| rand::RngCore::next_u64(rng) as usize,
    i8 => |rng| rand::RngCore::next_u64(rng) as i8,
    i16 => |rng| rand::RngCore::next_u64(rng) as i16,
    i32 => |rng| rand::RngCore::next_u64(rng) as i32,
    i64 => |rng| rand::RngCore::next_u64(rng) as i64,
    isize => |rng| rand::RngCore::next_u64(rng) as isize,
}

pub mod sample {
    //! Index sampling, mirroring `proptest::sample`.

    use super::{AnyPrimitive, Arbitrary, StdRng, Strategy};

    /// A deferred index into a collection whose length is only known
    /// inside the test body.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this sample onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Strategy for AnyPrimitive<Index> {
        type Value = Index;
        fn gen_value(&self, rng: &mut StdRng) -> Index {
            Index(rand::RngCore::next_u64(rng))
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyPrimitive<Index>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements of `element` each.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies, mirroring `proptest::option`.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Option<S::Value>` (3:1 `Some`, like proptest's
    /// default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy's values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! The per-test driver used by the `proptest!` macro expansion.

    use super::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Lower than real proptest's 256: no shrinking means a
            // bigger per-case budget buys little, and some property
            // bodies train small CNNs.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A soft assertion failure inside a property body.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Constructs a failure with a message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic case generator for one property.
    pub struct TestRunner {
        cases: u32,
        rng: StdRng,
    }

    impl TestRunner {
        /// Seeds the runner from the property's name (FNV-1a), so
        /// every property gets a distinct but reproducible stream.
        pub fn new(config: &ProptestConfig, name: &str) -> TestRunner {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                cases: config.cases,
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// The configured case count.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Draws one value from a strategy.
        pub fn generate<S: super::Strategy>(&mut self, s: &S) -> S::Value {
            s.gen_value(&mut self.rng)
        }
    }
}

// ---------------------------------------------------------------
// Macros
// ---------------------------------------------------------------

/// Defines property tests. Mirrors real proptest's surface for the
/// forms this workspace writes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            let strategies = ( $($strat,)+ );
            for case in 0..runner.cases() {
                let ( $($pat,)+ ) = runner.generate(&strategies);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Soft assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Soft equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{a:?} != {b:?}: {}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn range_values_stay_in_bounds() -> impl Strategy<Value = (u8, i32, f32)> {
        (0u8..16, -100i32..100, -2.0f32..2.0)
    }

    proptest! {
        #[test]
        fn tuples_and_ranges(v in range_values_stay_in_bounds()) {
            prop_assert!(v.0 < 16);
            prop_assert!((-100..100).contains(&v.1));
            prop_assert!((-2.0..2.0).contains(&v.2));
        }

        #[test]
        fn string_pattern_respects_class_and_len(s in "[a-z_]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }

        #[test]
        fn vec_and_index_compose(
            xs in proptest::collection::vec(0u32..50, 1..16),
            i in any::<prop::sample::Index>(),
        ) {
            let x = xs[i.index(xs.len())];
            prop_assert!(x < 50);
        }

        #[test]
        fn oneof_filter_and_map(x in prop_oneof![Just(3u32), 10u32..20]
            .prop_filter("nonzero", |v| *v != 11)
            .prop_map(|v| v * 2))
        {
            prop_assert!(x == 6 || (20..40).contains(&x));
            prop_assert!(x != 22);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let config = crate::test_runner::ProptestConfig::with_cases(100);
        let mut runner = crate::test_runner::TestRunner::new(&config, "recursive");
        for _ in 0..100 {
            let t = runner.generate(&strat);
            assert!(depth(&t) <= 5, "{t:?}");
        }
    }

    #[test]
    fn same_test_name_reproduces_the_same_cases() {
        let config = crate::test_runner::ProptestConfig::default();
        let mut a = crate::test_runner::TestRunner::new(&config, "x");
        let mut b = crate::test_runner::TestRunner::new(&config, "x");
        let s = proptest::collection::vec(0u64..1000, 0..8);
        for _ in 0..32 {
            assert_eq!(a.generate(&s), b.generate(&s));
        }
    }
}
