//! Strategies: value generators with combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking;
/// `gen_value` draws a finished value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { base: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) draws.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f`
    /// wraps an inner strategy into the recursive case. Nesting is
    /// bounded by `depth`; the size hints are accepted for signature
    /// compatibility but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn gen_value(&self, rng: &mut StdRng) -> R {
        (self.f)(self.base.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive draws",
            self.reason
        );
    }
}

/// A strategy always yielding clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

// ---------------------------------------------------------------
// Ranges, strings, tuples
// ---------------------------------------------------------------

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Regex-lite string strategy: `"[chars]{m,n}"` with `a-z` ranges
/// and literal characters inside the class. This covers every
/// pattern the workspace's tests use; anything fancier panics.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let rest = pat
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string pattern `{pat}` (want `[class]{{m,n}}`)"));
    let (class, rest) = rest
        .split_once(']')
        .unwrap_or_else(|| panic!("unterminated character class in `{pat}`"));
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            assert!(a <= b, "inverted range in `{pat}`");
            alphabet.extend(a..=b);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in `{pat}`");
    let (lo, hi) = match rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        Some(counts) => match counts.split_once(',') {
            Some((m, n)) => (
                m.parse()
                    .unwrap_or_else(|_| panic!("bad repeat in `{pat}`")),
                n.parse()
                    .unwrap_or_else(|_| panic!("bad repeat in `{pat}`")),
            ),
            None => {
                let n = counts
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repeat in `{pat}`"));
                (n, n)
            }
        },
        None if rest.is_empty() => (1, 1),
        None => panic!("unsupported trailer `{rest}` in string pattern `{pat}`"),
    };
    assert!(lo <= hi, "inverted repeat range in `{pat}`");
    (alphabet, lo, hi)
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}
